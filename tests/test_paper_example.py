"""White-box test of the paper's own running example (Figure 1).

The paper walks its mechanism through this exact loop and states:

* I7 (the hammock branch on a[i] == 0) is hard to predict,
* I11 (`ADD R4, R4, R0`) is the re-convergent point and control
  independent,
* I5 (the strided load) and its dependents I6/I11 get vectorized,
* I12/I13 (the induction-variable updates), although control independent,
  are NOT vectorized because they do not depend on a strided load.

We assemble the same loop, run the mechanism, and assert all of it by
inspecting the engine's SRSMT and stride-predictor state.
"""

import random

import pytest

from repro import hooks_for
from repro.isa import assemble
from repro.uarch import Core, ci
from repro.ci import estimate_reconvergent_point


@pytest.fixture(scope="module")
def machine():
    rng = random.Random(7)
    # ~half the elements zero, in no learnable order: I7 stays hard.
    vals = [0 if rng.random() < 0.5 else rng.randint(1, 9)
            for _ in range(400)]
    src = f"""
    .dataw a {' '.join(map(str, vals))}
        li   r1, 0              ; I1
        li   r2, 0              ; I2
        li   r3, 0              ; I3
        li   r4, 0              ; I4
        la   r9, a
    loop:
        add  r10, r9, r1
        ld   r0, 0(r10)         ; I5: strided load (via R1 induction)
        beqz r0, else_          ; I6/I7: compare-and-branch
        addi r2, r2, 1          ; I8
        j    ip                 ; I9
    else_:
        addi r3, r3, 1          ; I10
    ip: add  r4, r4, r0         ; I11: re-convergent point
        addi r1, r1, 8          ; I12
        slti r11, r1, 3200      ; I13
        bnez r11, loop          ; I14
        halt
    """
    prog = assemble(src, name="figure1")
    cfg = ci(1, 512)
    core = Core(cfg, prog, hooks_for(cfg))
    core.run()
    engine = core.hooks
    return prog, core, engine


def pc_of(prog, text_prefix):
    return next(i.pc for i in prog.code if i.text.startswith(text_prefix))


class TestFigure1:
    def test_reconvergent_point_is_i11(self, machine):
        prog, _, _ = machine
        branch = prog.code[pc_of(prog, "beqz")]
        assert estimate_reconvergent_point(prog, branch) == \
            prog.labels["ip"]

    def test_hammock_branch_is_hard(self, machine):
        prog, _, engine = machine
        assert engine.mbs.is_hard(pc_of(prog, "beqz"))

    def test_loop_branch_treated_as_easy(self, machine):
        # The loop-closing branch saturates the MBS while the loop runs
        # (its single mispredict — the exit — is counted as easy).  The
        # exit itself flips the direction and resets the counter to the
        # middle, so we assert via the misprediction classification.
        _, core, _ = machine
        assert core.stats.mispredicts > core.stats.mispredicts_hard
        assert core.stats.mispredicts_hard > 50  # the hammock's

    def test_i5_selected_and_strided(self, machine):
        prog, _, engine = machine
        se = engine.stride.lookup(pc_of(prog, "ld"))
        assert se is not None and se.stride == 8
        assert se.selected  # the S flag (step 2 marked it)

    def test_i5_and_i11_vectorized(self, machine):
        prog, _, engine = machine
        assert engine.srsmt.lookup(pc_of(prog, "ld")) is not None
        assert engine.srsmt.lookup(prog.labels["ip"]) is not None

    def test_i12_i13_not_vectorized(self, machine):
        """Control independent but not strided-load dependent: skipped."""
        prog, _, engine = machine
        assert engine.srsmt.lookup(pc_of(prog, "addi r1")) is None
        assert engine.srsmt.lookup(pc_of(prog, "slti")) is None

    def test_hammock_arms_not_vectorized(self, machine):
        prog, _, engine = machine
        assert engine.srsmt.lookup(pc_of(prog, "addi r2")) is None
        assert engine.srsmt.lookup(pc_of(prog, "addi r3")) is None

    def test_reuse_happened(self, machine):
        _, core, _ = machine
        assert core.stats.committed_reused > 100
        assert core.stats.ci_reused > 0

    def test_architectural_result_correct(self, machine):
        prog, core, _ = machine
        from repro.isa import run as frun
        oracle = frun(prog)
        assert core.stats.committed == oracle.steps
        assert core.sregs == oracle.regs
