"""Tests for the functional interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import InterpreterError, assemble, run
from repro.isa.opcodes import to_unsigned

HAMMOCK_SRC = """
.dataw a 5 0 3 0 0 7
    li r1, 0
    li r2, 0
    li r3, 0
    li r4, 0
loop:
    slli r5, r1, 3
    la  r6, a
    add r6, r6, r5
    ld  r0, 0(r6)
    beqz r0, else
    addi r2, r2, 1
    j ip
else:
    addi r3, r3, 1
ip: add r4, r4, r0
    addi r1, r1, 1
    slti r7, r1, 6
    bnez r7, loop
    halt
"""


class TestHammockProgram:
    """The paper's Figure 1 kernel: count zero/non-zero elements, sum all."""

    def test_counts_and_sum(self):
        r = run(assemble(HAMMOCK_SRC))
        assert r.halted
        assert r.reg(2) == 3   # non-zero elements
        assert r.reg(3) == 3   # zero elements
        assert r.reg(4) == 15  # sum

    def test_branch_statistics(self):
        r = run(assemble(HAMMOCK_SRC))
        # 6 iterations: 6 hammock branches + 6 loop-closing branches.
        assert r.branches == 12
        assert r.loads == 6

    def test_memory_untouched(self):
        p = assemble(HAMMOCK_SRC)
        r = run(p)
        assert r.stores == 0
        assert r.memory == p.initial_memory()


class TestBasics:
    def test_falls_off_end(self):
        r = run(assemble("addi r1, r1, 7"))
        assert not r.halted and r.reg(1) == 7

    def test_halt_stops(self):
        r = run(assemble("halt\naddi r1, r1, 7"))
        assert r.halted and r.reg(1) == 0

    def test_store_then_load(self):
        r = run(assemble("""
        .data buf 2
            la r1, buf
            li r2, 99
            st r2, 8(r1)
            ld r3, 8(r1)
            halt
        """))
        assert r.reg(3) == 99

    def test_uninitialised_memory_reads_zero(self):
        r = run(assemble(".data buf 1\nla r1, buf\nld r2, 0(r1)\nhalt"))
        assert r.reg(2) == 0

    def test_runaway_guard(self):
        with pytest.raises(InterpreterError):
            run(assemble("loop: j loop"), max_steps=100)

    def test_negative_values_roundtrip_memory(self):
        r = run(assemble("""
        .data buf 1
            la r1, buf
            li r2, -5
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """))
        assert r.reg(3) == to_unsigned(-5)

    def test_trace_hook_sees_every_instruction(self):
        seen = []
        run(assemble("nop\nnop\nhalt"),
            trace_hook=lambda pc, i, res, ea: seen.append(pc))
        assert seen == [0, 1, 2]

    def test_trace_hook_reports_load_address(self):
        records = []
        run(assemble(".data buf 2\nla r1, buf\nld r2, 8(r1)\nhalt"),
            trace_hook=lambda pc, i, res, ea: records.append((pc, ea)))
        assert records[1][1] is not None

    def test_state_injection(self):
        p = assemble("add r2, r0, r1\nhalt")
        regs = [0] * 64
        regs[0], regs[1] = 3, 4
        r = run(p, regs=regs)
        assert r.reg(2) == 7


class TestLoopSemantics:
    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_sum_matches_python(self, values):
        words = " ".join(str(v) for v in values)
        src = f"""
        .dataw vec {words}
            li r1, 0
            li r4, 0
        loop:
            slli r5, r1, 3
            la r6, vec
            add r6, r6, r5
            ld r0, 0(r6)
            add r4, r4, r0
            addi r1, r1, 1
            slti r7, r1, {len(values)}
            bnez r7, loop
            halt
        """
        r = run(assemble(src))
        assert r.reg(4) == to_unsigned(sum(values))

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_countdown(self, n):
        src = f"""
            li r1, {n}
        loop:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """
        r = run(assemble(src))
        assert r.reg(1) == 0
        assert r.branches == n
        assert r.taken == n - 1
