"""Property-based end-to-end validation: random programs, every policy.

A structured hypothesis generator builds random — but always halting —
programs from straight-line ALU blocks, memory traffic, hammocks and
bounded counted loops.  For every generated program and every machine
policy, the timing simulation must commit exactly the instructions the
functional interpreter executes, and the architectural register state the
simulator's speculative image converges to must match the oracle.

This is the strongest correctness net in the repository: branch recovery,
store undo, replica validation and squash reuse all have to cooperate
perfectly for these invariants to hold on arbitrary code.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import run_program
from repro.isa import NUM_LOGICAL_REGS, assemble
from repro.isa import run as run_functional
from repro.uarch import Core, ProcessorConfig, ci, scal, wb, with_spec_mem

# Registers the generator uses for data (loop counters live higher up).
DATA_REGS = list(range(2, 8))
PTR_REG = 10
BASE_REG = 11

alu_ops = st.sampled_from(["add", "sub", "xor", "and", "or", "mul",
                           "slt", "seq", "min", "max"])
imm_ops = st.sampled_from(["addi", "xori", "andi", "ori", "slli", "srli"])
reg = st.sampled_from(DATA_REGS)
small_imm = st.integers(min_value=0, max_value=63)


@st.composite
def alu_block(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            lines.append(f"{draw(alu_ops)} r{draw(reg)}, r{draw(reg)}, "
                         f"r{draw(reg)}")
        else:
            lines.append(f"{draw(imm_ops)} r{draw(reg)}, r{draw(reg)}, "
                         f"{draw(small_imm)}")
    return lines


@st.composite
def mem_block(draw):
    """A store followed by loads nearby (exercises forwarding + undo)."""
    off = draw(st.integers(min_value=0, max_value=7)) * 8
    lines = [f"st r{draw(reg)}, {off}(r{BASE_REG})",
             f"ld r{draw(reg)}, {off}(r{BASE_REG})"]
    if draw(st.booleans()):
        lines.append(f"ld r{draw(reg)}, {draw(small_imm) * 8}(r{BASE_REG})")
    return lines


@st.composite
def hammock(draw, label_ids):
    """An if-then-else or if-then on a data register (unpredictable)."""
    lid = next(label_ids)
    cond = draw(st.sampled_from(["beqz", "bnez", "bltz", "bgez"]))
    r = draw(reg)
    then_body = draw(alu_block())
    if draw(st.booleans()):   # if-then-else
        else_body = draw(alu_block())
        return ([f"{cond} r{r}, else_{lid}"]
                + then_body
                + [f"j ip_{lid}", f"else_{lid}:"]
                + else_body
                + [f"ip_{lid}:"])
    return [f"{cond} r{r}, skip_{lid}"] + then_body + [f"skip_{lid}:"]


@st.composite
def counted_loop(draw, label_ids):
    """A loop with a compile-time trip count walking the data array."""
    lid = next(label_ids)
    trips = draw(st.integers(min_value=2, max_value=12))
    body = draw(st.lists(st.one_of(alu_block(), mem_block(),
                                   hammock(label_ids)),
                         min_size=1, max_size=3))
    lines = [f"li r20, {trips}", f"mov r{PTR_REG}, r{BASE_REG}",
             f"loop_{lid}:"]
    for block in body:
        lines.extend(block)
    lines += [f"ld r{draw(reg)}, 0(r{PTR_REG})",
              f"addi r{PTR_REG}, r{PTR_REG}, 8",
              "subi r20, r20, 1",
              f"bnez r20, loop_{lid}"]
    return lines


@st.composite
def program_source(draw):
    import itertools
    label_ids = itertools.count()
    data_vals = draw(st.lists(st.integers(min_value=0, max_value=255),
                              min_size=8, max_size=24))
    blocks = draw(st.lists(
        st.one_of(alu_block(), mem_block(), hammock(label_ids),
                  counted_loop(label_ids)),
        min_size=2, max_size=6))
    lines = [f".dataw arr {' '.join(map(str, data_vals))}",
             f"la r{BASE_REG}, arr"]
    for i, r in enumerate(DATA_REGS):
        lines.append(f"li r{r}, {draw(st.integers(0, 200))}")
    for b in blocks:
        lines.extend(b)
    lines.append("halt")
    return "\n".join(lines)


CONFIGS = [
    ("scal", scal(1, 256)),
    ("wb2p", wb(2, 512)),
    ("ci", ci(1, 256)),
    ("ci-small-rf", ci(1, 96)),
    ("ci-iw", ci(1, 512, policy="ci-iw")),
    ("vect", ci(1, 256, policy="vect")),
    ("ci-specmem", with_spec_mem(ci(1, 128), 256)),
    ("ci-1rep", ci(1, 256, replicas=1)),
    ("ci-8rep", ci(2, 512, replicas=8)),
]


@pytest.mark.parametrize("label,cfg", CONFIGS)
@given(src=program_source())
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
def test_timing_matches_functional(label, cfg, src):
    prog = assemble(src, name="random")
    oracle = run_functional(prog, max_steps=50_000)
    stats = run_program(prog, cfg)
    assert stats.committed == oracle.steps, (
        f"[{label}] committed {stats.committed} != functional {oracle.steps}"
        f"\n{src}")


@given(src=program_source())
@settings(max_examples=15, deadline=None)
def test_architectural_state_matches_oracle(src):
    """After the core drains, its speculative register image and memory
    must equal the functional interpreter's final state."""
    prog = assemble(src, name="random")
    oracle = run_functional(prog, max_steps=50_000)
    core = Core(ci(1, 256), prog, hooks=None)
    from repro import hooks_for
    core = Core(ci(1, 256), prog, hooks_for(ci(1, 256)))
    core.run()
    assert core.sregs == oracle.regs, f"register state diverged\n{src}"
    oracle_mem = {a: v for a, v in oracle.memory.items() if v != 0}
    core_mem = {a: v for a, v in core.mem.items() if v != 0}
    assert core_mem == oracle_mem, f"memory state diverged\n{src}"


@given(src=program_source())
@settings(max_examples=10, deadline=None)
def test_determinism_across_runs(src):
    prog = assemble(src, name="random")
    a = run_program(prog, ci(1, 256)).as_dict()
    b = run_program(prog, ci(1, 256)).as_dict()
    assert a == b
