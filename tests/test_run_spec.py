"""The canonical run vocabulary: RunSpec, the workload registry and the
one content-addressed key (DESIGN.md §11).

Covers the round-trip guarantees (dict/JSON, faults and observers), the
deprecated ``(kernel, cfg)`` tuple shim, registry enumeration, and the
key-stability golden: the same request must produce byte-identical keys
through the local pool, the serve coalescing index and a JSON wire
round-trip — across releases (tests/golden/run_keys.json pins them).
"""

import json
import os

import pytest

from repro.runtime import RunSpec, run_key
from repro.runtime.spec import SPEC_FIELDS
from repro.uarch import ci, scal, wb
from repro.uarch.config import ProcessorConfig
from repro.workloads import (
    UnknownWorkloadError,
    all_workloads,
    get_workload,
    kernel_names,
    workload_names,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "run_keys.json")


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = RunSpec("gzip", 0.3, 7, ci(1, 512), policy="vect")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_with_faults_and_observe(self):
        spec = RunSpec("mcf", 0.1, 2, wb(2, 256),
                       faults="valfail*3,seed=7", observe="cpi,audit")
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.faults == "valfail*3,seed=7"
        assert back.observe == "cpi,audit"

    def test_json_round_trip(self):
        spec = RunSpec("eon", 0.25, 3, scal(1, 128))
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_covers_every_field(self):
        spec = RunSpec("gzip")
        assert set(spec.to_dict()) == set(SPEC_FIELDS)

    def test_from_dict_rejects_unknown_fields(self):
        data = RunSpec("gzip").to_dict()
        data["priority"] = "interactive"
        with pytest.raises(ValueError, match="unknown fields"):
            RunSpec.from_dict(data)

    def test_from_dict_rejects_bad_types(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict({"kernel": 3})
        with pytest.raises(ValueError):
            RunSpec.from_dict({"kernel": "gzip", "scale": "lots"})

    def test_defaults(self):
        spec = RunSpec("gzip")
        assert spec.scale == 0.5 and spec.seed == 1
        assert spec.cfg == ProcessorConfig()
        assert spec.policy is None and spec.faults is None
        assert spec.observe is None


class TestValidation:
    def test_validate_returns_self(self):
        spec = RunSpec("gzip", 0.1, 1, ci(1, 512))
        assert spec.validate() is spec

    def test_validate_unknown_kernel_suggests(self):
        with pytest.raises(UnknownWorkloadError) as exc:
            RunSpec("bzip", 0.1, 1, ci(1, 512)).validate()
        assert "did you mean" in str(exc.value)
        assert "bzip2" in str(exc.value)

    def test_validate_unknown_policy(self):
        with pytest.raises(ValueError):
            RunSpec("gzip", 0.1, 1, ci(1, 512), policy="nosuch").validate()

    def test_validate_bad_fault_plan(self):
        with pytest.raises(ValueError):
            RunSpec("gzip", 0.1, 1, ci(1, 512),
                    faults="frobnicate@9").validate()

    def test_resolved_cfg_applies_policy(self):
        spec = RunSpec("gzip", 0.1, 1, ci(1, 512), policy="vect")
        assert spec.resolved_cfg().ci_policy == "vect"


class TestRegistry:
    def test_enumeration_matches_suite(self):
        assert workload_names() == [
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
            "mcf", "parser", "perlbmk", "twolf", "vortex", "vpr"]
        assert kernel_names() == workload_names()

    def test_specs_carry_metadata(self):
        for spec in all_workloads():
            assert spec.category and spec.description and spec.traits
            assert spec.default_scales

    def test_get_workload_suggests(self):
        with pytest.raises(UnknownWorkloadError) as exc:
            get_workload("vortx")
        assert "did you mean" in str(exc.value)

    def test_registry_builds_programs(self):
        prog = get_workload("gzip").program(0.05, 1)
        assert len(prog) > 0


class TestTupleShim:
    def test_tuple_points_warn_but_work(self):
        from repro.experiments.common import Runner
        from repro.runtime import ResultCache
        runner = Runner(scale=0.05, seed=1, jobs=1,
                        cache=ResultCache(enabled=False))
        cfg = wb(1, 512)
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            legacy = runner.run_many([("gzip", cfg)])
        modern = runner.run_many([RunSpec("gzip", 0.05, 1, cfg)])
        assert legacy[0].as_dict() == modern[0].as_dict()


class TestKeyStability:
    """One identity everywhere: pool, serve coalescing, JSON wire."""

    def entries(self):
        with open(GOLDEN) as fh:
            return json.load(fh)["entries"]

    def test_golden_keys_byte_identical(self):
        for entry in self.entries():
            spec = RunSpec.from_dict(entry["spec"])
            assert spec.cache_key() == entry["key"]

    def test_local_runner_key_matches(self):
        # run_key() is the exact function the pool memo and the disk
        # cache address results by.
        for entry in self.entries():
            spec = RunSpec.from_dict(entry["spec"])
            assert run_key(spec) == entry["key"]

    def test_serve_coalescing_key_matches(self):
        from repro.serve.protocol import JobSpec
        from repro.serve.scheduler import SimExecutor
        executor = SimExecutor()
        for entry in self.entries():
            spec = RunSpec.from_dict(entry["spec"])
            job = JobSpec(spec.kernel, spec.scale, spec.seed, spec.cfg,
                          spec.policy, spec.faults)
            assert executor.key_for(job) == entry["key"]

    def test_json_round_trip_key_matches(self):
        for entry in self.entries():
            spec = RunSpec.from_json(RunSpec.from_dict(entry["spec"])
                                     .to_json())
            assert spec.cache_key() == entry["key"]

    def test_observe_does_not_change_key(self):
        base = RunSpec("gzip", 0.1, 1, ci(1, 512))
        observed = RunSpec("gzip", 0.1, 1, ci(1, 512), observe="cpi")
        assert observed.cache_key() == base.cache_key()

    def test_faults_change_key(self):
        base = RunSpec("gzip", 0.1, 1, ci(1, 512))
        faulted = RunSpec("gzip", 0.1, 1, ci(1, 512), faults="squash@400")
        assert faulted.cache_key() != base.cache_key()


class TestSingleHashAuthority:
    def test_hashlib_only_in_keys_module(self):
        # The key schema lives in exactly one file; a second hashlib
        # import means a second key vocabulary is growing somewhere.
        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "src", "repro")
        offenders = []
        for dirpath, _, files in os.walk(root):
            for fname in files:
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path) as fh:
                    if "hashlib" in fh.read():
                        rel = os.path.relpath(path, root)
                        if rel != os.path.join("runtime", "keys.py"):
                            offenders.append(rel)
        assert not offenders, f"hashlib outside runtime/keys.py: {offenders}"
