"""Tests for the serve layer's durable job journal.

The journal is the crash-safety contract: every lifecycle transition
checksummed and fsync'd before the client sees the ack, torn tails
quarantined and healed on replay, and the replayed state machine able
to prove that no job was ever simulated twice.
"""

import json
import os

import pytest

from repro.serve.journal import (
    ACCEPTED,
    COMPLETED,
    JOURNAL_SCHEMA,
    JobJournal,
    replay_journal,
)


def _journal(tmp_path, name="journal.jsonl"):
    return JobJournal(str(tmp_path / name))


def _spec_dict(kernel="gzip"):
    return {"kernel": kernel, "scale": 0.1, "seed": 1}


class TestRoundtrip:
    def test_lifecycle_roundtrip(self, tmp_path):
        j = _journal(tmp_path)
        j.note_server_start()
        j.note_accepted("k1", _spec_dict())
        j.note_accepted("k2", _spec_dict("mcf"))
        j.note_started(["k1", "k2"])
        j.note_completed("k1", source="sim")
        j.note_failed("k2", message="boom")
        j.close()

        replay = replay_journal(j.path)
        # started(["k1","k2"]) is two records: start + 2 accepts +
        # 2 starteds + 2 terminals.
        assert replay.records == 7
        assert replay.epochs == 1
        assert replay.corrupt == 0
        assert replay.consistent
        assert not replay.incomplete
        assert replay.terminal == {"k1": "completed", "k2": "failed"}
        assert replay.completions == {"k1": ["sim"]}

    def test_incomplete_jobs_carry_their_spec(self, tmp_path):
        j = _journal(tmp_path)
        j.note_server_start()
        j.note_accepted("k1", _spec_dict())
        j.note_started(["k1"])   # crash before terminal
        j.close()

        replay = replay_journal(j.path)
        assert list(replay.incomplete) == ["k1"]
        assert replay.incomplete["k1"]["spec"] == _spec_dict()
        assert replay.consistent

    def test_append_many_is_one_batch(self, tmp_path):
        j = _journal(tmp_path)
        j.append_many([("accepted", f"k{i}", {"spec": _spec_dict()})
                       for i in range(5)])
        j.close()
        replay = replay_journal(j.path)
        assert replay.records == 5
        assert replay.last_seq == 5

    def test_seq_resumes_across_incarnations(self, tmp_path):
        j = _journal(tmp_path)
        j.note_server_start()
        j.note_accepted("k1", _spec_dict())
        j.close()

        j2 = JobJournal(j.path)
        j2.replay()
        j2.note_server_start()
        j2.close()
        replay = replay_journal(j.path)
        assert replay.epochs == 2
        assert replay.last_seq == 3   # continued, not restarted

    def test_missing_file_is_empty_replay(self, tmp_path):
        replay = replay_journal(str(tmp_path / "nope.jsonl"))
        assert replay.records == 0
        assert replay.consistent


class TestCorruption:
    def _write_good_plus(self, tmp_path, bad_lines):
        j = _journal(tmp_path)
        j.note_server_start()
        j.note_accepted("k1", _spec_dict())
        j.note_completed("k1", source="sim")
        j.close()
        with open(j.path, "a", encoding="utf-8") as fh:
            for line in bad_lines:
                fh.write(line + "\n")
        return j.path

    def test_torn_tail_quarantined_and_healed(self, tmp_path):
        path = self._write_good_plus(tmp_path, ['{"v": 1, "sha256": "to'])
        replay = replay_journal(path)
        assert replay.records == 3
        assert replay.corrupt == 1
        assert replay.consistent   # corruption is evidence, not violation
        assert replay.quarantine_path == path + ".quarantine"
        with open(replay.quarantine_path) as fh:
            q = fh.read()
        assert "# line 4" in q and '"to' in q

        # Healed: a second replay sees a clean journal (idempotent).
        again = replay_journal(path)
        assert again.corrupt == 0
        assert again.records == 3

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        forged = json.dumps({"v": JOURNAL_SCHEMA, "sha256": "0" * 64,
                             "record": {"event": COMPLETED, "key": "kX",
                                        "seq": 99, "source": "sim"}})
        path = self._write_good_plus(tmp_path, [forged])
        replay = replay_journal(path)
        assert replay.corrupt == 1
        # The forged completion never entered the state machine.
        assert "kX" not in replay.terminal

    def test_garbage_and_non_object_lines(self, tmp_path):
        path = self._write_good_plus(
            tmp_path, ["\x00\x01binary", "[1, 2, 3]", "{}"])
        replay = replay_journal(path)
        assert replay.corrupt == 3
        assert replay.records == 3

    def test_other_schema_is_stale_not_corrupt(self, tmp_path):
        other = json.dumps({"v": JOURNAL_SCHEMA + 1, "sha256": "x",
                            "record": {"event": ACCEPTED, "key": "k9"}})
        path = self._write_good_plus(tmp_path, [other])
        replay = replay_journal(path)
        assert replay.stale == 1
        assert replay.corrupt == 0

    def test_audit_mode_mutates_nothing(self, tmp_path):
        path = self._write_good_plus(tmp_path, ['{"torn'])
        before = open(path).read()
        replay = replay_journal(path, quarantine=False)
        assert replay.corrupt == 1
        assert open(path).read() == before
        assert not os.path.exists(path + ".quarantine")


class TestStateMachine:
    def test_resubmission_after_terminal_is_legal(self, tmp_path):
        j = _journal(tmp_path)
        j.note_accepted("k1", _spec_dict())
        j.note_completed("k1", source="sim")
        j.note_accepted("k1", _spec_dict())   # resubmit after restart
        j.note_completed("k1", source="disk")
        j.close()
        replay = replay_journal(j.path)
        assert replay.consistent
        assert replay.completions["k1"] == ["sim", "disk"]

    def test_duplicate_sim_is_the_violation(self, tmp_path):
        j = _journal(tmp_path)
        j.note_accepted("k1", _spec_dict())
        j.note_completed("k1", source="sim")
        j.note_accepted("k1", _spec_dict())
        j.note_completed("k1", source="sim")   # simulated twice!
        j.close()
        replay = replay_journal(j.path)
        assert replay.duplicate_sims() == ["k1"]
        assert not replay.consistent

    def test_double_accept_without_terminal_is_violation(self, tmp_path):
        j = _journal(tmp_path)
        j.note_accepted("k1", _spec_dict())
        j.note_accepted("k1", _spec_dict())
        j.close()
        replay = replay_journal(j.path)
        assert len(replay.violations) == 1
        assert not replay.consistent

    def test_terminal_without_accept_is_violation(self, tmp_path):
        j = _journal(tmp_path)
        j.note_completed("k1", source="sim")
        j.close()
        replay = replay_journal(j.path)
        assert replay.violations
        assert not replay.consistent

    def test_started_without_accept_is_violation(self, tmp_path):
        j = _journal(tmp_path)
        j.note_started(["k1"])
        j.close()
        assert replay_journal(j.path).violations

    @pytest.mark.parametrize("reason", ["shed", "draining", "client"])
    def test_cancelled_closes_the_job(self, tmp_path, reason):
        j = _journal(tmp_path)
        j.note_accepted("k1", _spec_dict())
        j.note_cancelled("k1", reason=reason)
        j.close()
        replay = replay_journal(j.path)
        assert replay.consistent
        assert not replay.incomplete
        assert replay.terminal == {"k1": "cancelled"}
