"""Integration tests: the full mechanism running on the core."""

import pytest

from repro import run_kernel, run_program
from repro.isa import assemble, run as frun
from repro.uarch import ProcessorConfig, ci, scal, wb, with_spec_mem
from repro.uarch.config import INF_REGS
from repro.workloads import SUITE, build_program

SCALE = 0.4


@pytest.fixture(scope="module")
def results():
    """Simulate a few kernels under each policy once."""
    out = {}
    for name in ("bzip2", "gcc", "mcf", "eon", "vortex"):
        prog = build_program(name, SCALE)
        out[name] = {
            "wb": run_program(prog, wb(1, 512)),
            "ci": run_program(prog, ci(1, 512)),
            "ci-iw": run_program(prog, ci(1, 512, policy="ci-iw")),
            "vect": run_program(prog, ci(1, 512, policy="vect")),
        }
    return out


class TestCorrectness:
    """The mechanism must never change architectural results."""

    @pytest.mark.parametrize("name", [s.name for s in SUITE])
    @pytest.mark.parametrize("policy", ["ci", "ci-iw", "vect"])
    def test_commit_count_matches_functional(self, name, policy):
        prog = build_program(name, SCALE)
        st = run_program(prog, ci(1, 512, policy=policy))
        assert st.committed == frun(prog).steps

    @pytest.mark.parametrize("name", [s.name for s in SUITE])
    def test_spec_mem_mode_correct(self, name):
        prog = build_program(name, SCALE)
        st = run_program(prog, with_spec_mem(ci(1, 256), 768))
        assert st.committed == frun(prog).steps


class TestMechanismActivity:
    def test_reuse_happens_on_hammock_kernels(self, results):
        for name in ("bzip2", "gcc", "vortex"):
            st = results[name]["ci"]
            assert st.committed_reused > 0, name
            assert st.replicas_created > 0
            assert st.replica_validations >= st.committed_reused

    def test_eon_has_few_ci_events(self, results):
        # Highly biased branches: MBS filters them out.
        assert results["eon"]["ci"].ci_events < results["bzip2"]["ci"].ci_events / 3

    def test_mcf_selects_but_rarely_reuses(self, results):
        st = results["mcf"]["ci"]
        # CI instructions exist (selection succeeds) but the backward
        # slices are pointer chases, not strided loads.
        assert st.ci_selected > 0
        assert st.reuse_fraction < 0.08

    def test_ci_events_bounded_by_hard_mispredicts(self, results):
        for name, by_policy in results.items():
            st = by_policy["ci"]
            assert st.ci_reused <= st.ci_selected <= st.ci_events

    def test_replicas_survive_mispredictions(self, results):
        st = results["bzip2"]["ci"]
        # Reuse requires replicas created before a misprediction to
        # validate after it: with ~hundreds of mispredictions and
        # continuous reuse, validations far exceed misprediction count.
        assert st.replica_validations > st.mispredicts

    def test_no_mechanism_no_replicas(self):
        st = run_kernel("bzip2", wb(1, 512), scale=SCALE)
        assert st.replicas_created == 0 and st.committed_reused == 0


class TestPerformanceShape:
    """The headline comparisons the paper's evaluation makes."""

    def test_ci_beats_wb_on_hammock_kernels(self, results):
        for name in ("bzip2", "gcc", "vortex"):
            assert results[name]["ci"].ipc > results[name]["wb"].ipc * 1.05, name

    def test_ci_harmless_on_easy_branch_kernel(self, results):
        assert results["eon"]["ci"].ipc >= results["eon"]["wb"].ipc * 0.97

    def test_ciiw_between_wb_and_ci(self, results):
        ipc = lambda p: sum(results[n][p].ipc for n in results)
        assert ipc("wb") <= ipc("ci-iw") <= ipc("ci")

    def test_ci_reduces_wrong_path_work(self, results):
        # Pre-executed branch inputs resolve mispredictions sooner.
        st_ci, st_wb = results["bzip2"]["ci"], results["bzip2"]["wb"]
        assert st_ci.squashed < st_wb.squashed

    def test_register_pressure_shape(self):
        prog = build_program("bzip2", SCALE)
        small = run_program(prog, ci(1, 128))
        large = run_program(prog, ci(1, 768))
        base_small = run_program(prog, wb(1, 128))
        assert large.ipc > small.ipc
        # At 128 registers the mechanism must not run away with replicas.
        assert small.ipc >= base_small.ipc * 0.90

    def test_vect_collapses_at_small_regfile(self):
        prog = build_program("bzip2", SCALE)
        v128 = run_program(prog, ci(1, 128, policy="vect"))
        c128 = run_program(prog, ci(1, 128))
        v512 = run_program(prog, ci(1, 512, policy="vect"))
        assert v128.ipc < v512.ipc * 0.8
        assert v128.ipc <= c128.ipc * 1.05

    def test_vect_wastes_more_speculation(self, results):
        # In-text claim: 29.6% (ci) vs 48.5% (vect) wrongly spec. activity.
        tot_ci = sum(results[n]["ci"].wrong_spec_activity for n in results)
        tot_v = sum(results[n]["vect"].wrong_spec_activity for n in results)
        assert tot_v > tot_ci

    def test_spec_mem_relieves_small_regfile(self):
        prog = build_program("bzip2", SCALE)
        mono = run_program(prog, ci(1, 128))
        hier = run_program(prog, with_spec_mem(ci(1, 128), 768))
        assert hier.ipc > mono.ipc

    def test_spec_mem_approaches_unbounded(self):
        prog = build_program("bzip2", SCALE)
        hier = run_program(prog, with_spec_mem(ci(1, 256), 768))
        unbounded = run_program(prog, ci(1, INF_REGS))
        assert hier.ipc > unbounded.ipc * 0.9

    def test_slow_spec_mem_costs_little(self):
        prog = build_program("bzip2", SCALE)
        fast = run_program(prog, with_spec_mem(ci(1, 256), 768, latency=2))
        slow = run_program(prog, with_spec_mem(ci(1, 256), 768, latency=5))
        # The paper reports ~3% on SpecInt; our kernels' consumers are
        # much tighter (every reused accumulator feeds the next within a
        # couple of instructions), so allow a larger cost.
        assert slow.ipc > fast.ipc * 0.80


class TestReplicaKnob:
    def test_one_replica_worse_than_four(self):
        prog = build_program("bzip2", SCALE)
        r1 = run_program(prog, ci(1, 512, replicas=1))
        r4 = run_program(prog, ci(1, 512, replicas=4))
        assert r4.ipc > r1.ipc

    def test_more_replicas_more_activity(self):
        prog = build_program("bzip2", SCALE)
        r2 = run_program(prog, ci(1, INF_REGS, replicas=2))
        r8 = run_program(prog, ci(1, INF_REGS, replicas=8))
        assert r8.replicas_created > r2.replicas_created


class TestStridedPCKnob:
    def test_avg_stridedpcs_near_paper(self):
        st = run_kernel("bzip2", ci(1, 512, strided_pcs_per_entry=4), scale=SCALE)
        # The paper reports 1.7 on SpecInt; our unrolled weight streams put
        # several strided loads into each accumulator's backward slice.
        assert 1.0 <= st.avg_stridedpcs <= 3.2

    def test_overflow_counted_with_one_slot(self):
        st1 = run_kernel("bzip2", ci(1, 512, strided_pcs_per_entry=1), scale=SCALE)
        st4 = run_kernel("bzip2", ci(1, 512, strided_pcs_per_entry=4), scale=SCALE)
        assert st1.stridedpc_overflow > st4.stridedpc_overflow


class TestCoherence:
    def test_store_conflicts_detected_on_rmw_kernel(self):
        # vpr stores into the array it strided-loads: without the conflict
        # blacklist, replicas and stores collide.
        st = run_kernel("vpr", ci(1, 512, ci_conflict_blacklist=0), scale=SCALE)
        assert st.coherence_squashes > 0

    def test_blacklist_reduces_squashes(self):
        no_bl = run_kernel("vpr", ci(1, 512, ci_conflict_blacklist=0), scale=SCALE)
        bl = run_kernel("vpr", ci(1, 512, ci_conflict_blacklist=2), scale=SCALE)
        assert bl.coherence_squashes <= no_bl.coherence_squashes

    def test_conflicting_stores_fraction_small(self):
        # In-text claim: fewer than 3% of stores conflict.
        st = run_kernel("vortex", ci(1, 512), scale=SCALE)
        assert st.coherence_squashes / max(1, st.stores_committed) < 0.03
