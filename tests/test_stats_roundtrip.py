"""SimStats to_dict/from_dict round-trip (cache + cross-process format)."""

import json

from repro.uarch import SimStats


def populated_stats() -> SimStats:
    st = SimStats()
    st.cycles = 1234
    st.fetched = 9000
    st.dispatched = 8000
    st.committed = 5000
    st.committed_reused = 700
    st.squashed = 2100
    st.cond_branches = 900
    st.mispredicts = 80
    st.mispredicts_hard = 33
    st.ci_events = 30
    st.replicas_created = 120
    st.l1d_accesses = 2500
    st.regs_in_use_samples = 1234
    st.regs_in_use_sum = 98765
    st.regs_in_use_peak = 180
    st.interval_committed = [100, 900, 2300, 5000]
    return st


class TestRoundTrip:
    def test_identity(self):
        st = populated_stats()
        again = SimStats.from_dict(st.to_dict())
        assert again == st
        assert again is not st

    def test_every_field_survives(self):
        st = populated_stats()
        d = st.to_dict()
        again = SimStats.from_dict(d)
        assert again.to_dict() == d

    def test_json_safe(self):
        """The dict form must survive JSON (what the disk cache stores)."""
        st = populated_stats()
        again = SimStats.from_dict(json.loads(json.dumps(st.to_dict())))
        assert again == st

    def test_derived_properties_preserved(self):
        st = populated_stats()
        again = SimStats.from_dict(st.to_dict())
        assert again.ipc == st.ipc
        assert again.mispredict_rate == st.mispredict_rate
        assert again.avg_regs_in_use == st.avg_regs_in_use
        assert again.interval_ipc == st.interval_ipc

    def test_interval_list_is_copied(self):
        st = populated_stats()
        d = st.to_dict()
        again = SimStats.from_dict(d)
        again.interval_committed.append(99)
        assert d["interval_committed"][-1] != 99 or \
            len(d["interval_committed"]) != len(again.interval_committed)

    def test_unknown_keys_ignored(self):
        d = populated_stats().to_dict()
        d["a_future_counter"] = 42
        again = SimStats.from_dict(d)
        assert not hasattr(again, "a_future_counter")

    def test_missing_keys_default(self):
        st = SimStats.from_dict({"cycles": 10, "committed": 5})
        assert st.cycles == 10 and st.committed == 5
        assert st.mispredicts == 0 and st.interval_committed == []

    def test_to_dict_excludes_derived(self):
        """to_dict is the lossless field form, unlike reporting as_dict."""
        d = populated_stats().to_dict()
        assert "ipc" not in d and "reuse_fraction" not in d
