"""Tests for the simulation service: protocol, queue, admission, server.

The end-to-end tests start a real :class:`ServeServer` on a loopback
port inside the test's event loop and drive it with the blocking
:class:`ServeClient` from a worker thread — the same topology as
production, minus the subprocess.
"""

import asyncio
import threading

import pytest

from repro import run_kernel
from repro.runtime import ResultCache
from repro.serve import (
    AdmissionController,
    JobSpec,
    ProtocolError,
    RemoteRunner,
    ServeClient,
    ServeError,
    ServeQueue,
    ServeServer,
    ServerMetrics,
    parse_address,
)
from repro.serve import protocol
from repro.serve.queue import Ticket
from repro.uarch import SimStats
from repro.uarch.config import ProcessorConfig, ci
from repro.uarch.config import config_from_dict, config_to_dict

SCALE = 0.1
SEED = 1


# -- protocol ---------------------------------------------------------------

class TestProtocol:
    def test_jobspec_roundtrip(self):
        spec = JobSpec(kernel="gzip", scale=0.25, seed=3,
                       cfg=ci(2, 256), policy="vect",
                       priority="interactive", client="t")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_config_dict_roundtrip(self):
        cfg = ci(2, 256, replicas=8)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_config_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="no_such_knob"):
            config_from_dict({"no_such_knob": 1})

    def test_jobspec_rejects_bad_priority(self):
        with pytest.raises(ProtocolError, match="priority"):
            JobSpec.from_dict({"kernel": "gzip", "priority": "turbo"})

    def test_jobspec_rejects_unknown_policy_at_parse(self):
        with pytest.raises(ProtocolError):
            JobSpec.from_dict({"kernel": "gzip", "policy": "nope"})

    def test_submit_body_requires_jobs(self):
        with pytest.raises(ProtocolError, match="jobs"):
            protocol.parse_submit_body({"v": protocol.PROTOCOL_VERSION})

    def test_version_check(self):
        with pytest.raises(ProtocolError, match="version"):
            protocol.check_version({"v": 999})
        protocol.check_version({})   # absent version = current

    def test_error_info_failed_result_bridge(self):
        from repro.runtime import FailedResult
        fr = FailedResult("gzip", 0.1, 1, error="boom\nlast line",
                          phase="timeout", attempts=3)
        err = protocol.ErrorInfo.from_failed_result(fr)
        assert err.kind == "failed"
        assert err.phase == "timeout"
        back = err.to_failed_result("gzip", 0.1, 1)
        assert back.failed and back.phase == "timeout"
        assert back.attempts == 3

    def test_parse_address(self):
        assert parse_address("example:99") == ("example", 99)
        assert parse_address("http://h:1/") == ("h", 1)
        assert parse_address("h") == ("h", protocol.DEFAULT_PORT)
        with pytest.raises(ServeError):
            parse_address("h:notaport")


# -- queue ------------------------------------------------------------------

def _ticket(key, priority="sweep", client="c", kernel="gzip"):
    spec = JobSpec(kernel=kernel, scale=SCALE, seed=SEED,
                   priority=priority, client=client)
    return Ticket(spec, key, now=0.0)


class TestServeQueue:
    def test_coalesce_attaches_to_existing_entry(self):
        q = ServeQueue()
        first = _ticket("k1")
        assert q.coalesce(first) is None
        q.push(first)
        twin = _ticket("k1")
        entry = q.coalesce(twin)
        assert entry is not None and len(entry.tickets) == 2
        assert twin.coalesced and q.depth == 1

    def test_coalesce_onto_running_entry(self):
        q = ServeQueue()
        q.push(_ticket("k1"))
        [entry] = q.pop_batch(8)
        assert entry.state == protocol.RUNNING
        twin = _ticket("k1")
        assert q.coalesce(twin) is entry
        assert twin.state == protocol.RUNNING

    def test_interactive_twin_upgrades_queued_sweep(self):
        q = ServeQueue()
        q.push(_ticket("k1", priority="sweep"))
        q.push(_ticket("k2", priority="sweep"))
        entry = q.coalesce(_ticket("k1", priority="interactive"))
        assert entry.priority == "interactive"
        batch = q.pop_batch(1)
        assert batch[0] is entry           # jumped ahead of k2

    def test_priority_lane_order_and_fairness(self):
        q = ServeQueue()
        q.push(_ticket("s1", client="a"))
        q.push(_ticket("s2", client="a"))
        q.push(_ticket("s3", client="b"))
        q.push(_ticket("i1", priority="interactive", client="z"))
        keys = [e.key for e in q.pop_batch(8)]
        # interactive first; sweep lane round-robins a, b before a again
        assert keys == ["i1", "s1", "s3", "s2"]
        assert q.depth == 0 and q.inflight == 4

    def test_shed_newest_sweep(self):
        q = ServeQueue()
        q.push(_ticket("old"))
        q.push(_ticket("new"))
        victim = q.shed_newest_sweep()
        assert victim.key == "new"
        assert "new" not in q.entries and q.depth == 1
        assert q.shed_newest_sweep().key == "old"
        assert q.shed_newest_sweep() is None

    def test_cancel_only_queued(self):
        q = ServeQueue()
        t = _ticket("k1")
        q.push(t)
        twin = _ticket("k1")
        q.coalesce(twin)
        assert q.cancel(twin)              # sibling keeps the entry
        assert "k1" in q.entries
        assert q.cancel(t)                 # last ticket removes it
        assert "k1" not in q.entries and q.depth == 0
        running = _ticket("k2")
        q.push(running)
        q.pop_batch(1)
        assert not q.cancel(running)       # the pool owns it now

    def test_drain_empties_every_lane(self):
        q = ServeQueue()
        q.push(_ticket("a"))
        q.push(_ticket("b", priority="interactive"))
        drained = q.drain()
        assert {e.key for e in drained} == {"a", "b"}
        assert q.depth == 0 and not q.entries


# -- admission --------------------------------------------------------------

class TestAdmission:
    def test_accepts_under_depth(self):
        ctl = AdmissionController(max_depth=2)
        q = ServeQueue()
        d = ctl.decide(q, JobSpec(kernel="gzip"), ServerMetrics())
        assert d.accepted and d.shed is None

    def test_rejects_sweep_when_full(self):
        ctl = AdmissionController(max_depth=1)
        q = ServeQueue()
        q.push(_ticket("k1"))
        d = ctl.decide(q, JobSpec(kernel="gzip", priority="sweep"),
                       ServerMetrics())
        assert not d.accepted
        assert d.error.kind == "rejected"
        assert d.error.retry_after > 0

    def test_interactive_sheds_newest_sweep(self):
        ctl = AdmissionController(max_depth=1)
        q = ServeQueue()
        q.push(_ticket("k1", priority="sweep"))
        d = ctl.decide(q, JobSpec(kernel="gzip", priority="interactive"),
                       ServerMetrics())
        assert d.accepted and d.shed is not None
        assert d.shed.key == "k1"

    def test_interactive_rejected_when_no_sweep_to_shed(self):
        ctl = AdmissionController(max_depth=1)
        q = ServeQueue()
        q.push(_ticket("k1", priority="interactive"))
        d = ctl.decide(q, JobSpec(kernel="gzip", priority="interactive"),
                       ServerMetrics())
        assert not d.accepted and d.shed is None


# -- metrics ----------------------------------------------------------------

class TestMetrics:
    def test_prometheus_rendering(self):
        m = ServerMetrics()
        m.inc("jobs_submitted", 3)
        m.observe_latency(0.5)
        m.observe_latency(1.5)
        text = m.render_prometheus(
            {"depth": 2, "inflight": 1, "queued_tickets": 2},
            {"sims_run": 5, "disk_hits": 4, "memo_hits": 3}, "ok")
        assert "repro_up 1" in text
        assert 'repro_server_state{state="ok"} 1' in text
        assert "repro_jobs_submitted_total 3" in text
        assert 'repro_cache_hits_total{layer="disk"} 4' in text
        assert 'repro_cache_hits_total{layer="memo"} 3' in text
        assert "repro_job_latency_seconds_count 2" in text
        assert "# TYPE repro_job_latency_seconds summary" in text

    def test_healthz_snapshot(self):
        m = ServerMetrics()
        snap = m.snapshot({"depth": 0, "inflight": 0, "queued_tickets": 0},
                          {"sims_run": 2, "disk_hits": 1, "memo_hits": 0},
                          state="draining", jobs=4)
        assert snap["status"] == "draining"
        assert snap["cache_hits"] == 1
        assert snap["latency_seconds"]["count"] == 0

    def test_quantiles(self):
        m = ServerMetrics()
        for x in (1.0, 2.0, 3.0, 4.0, 100.0):
            m.observe_latency(x)
        p50, p95 = m.latency_quantiles()
        assert p50 == 3.0
        assert p95 == 100.0


# -- end-to-end -------------------------------------------------------------

def _serve_fixture(tmp_path, **kw):
    cache = ResultCache(root=str(tmp_path / "srvcache"), enabled=True)
    return ServeServer(port=0, cache=cache, jobs=1, **kw)


def _drive(server, fn):
    """Start ``server``, run blocking ``fn(client)`` in a thread, drain."""
    async def main():
        await server.start()
        host, port = server.address
        client = ServeClient(f"{host}:{port}", timeout=30.0)
        try:
            return await asyncio.to_thread(fn, client)
        finally:
            server.request_shutdown()
            await server.wait_stopped()
    return asyncio.run(main())


class TestServerEndToEnd:
    def test_submit_result_matches_local_simulation(self, tmp_path):
        cfg = ProcessorConfig()
        expected = run_kernel("gzip", cfg, scale=SCALE, seed=SEED)

        def drive(client):
            [(status, stats)] = client.run(
                [JobSpec(kernel="gzip", scale=SCALE, seed=SEED, cfg=cfg)])
            assert status.state == protocol.DONE
            return SimStats.from_dict(stats)

        got = _drive(_serve_fixture(tmp_path), drive)
        assert got == expected

    def test_concurrent_clients_identical_and_run_once(self, tmp_path):
        """Twin submissions coalesce: identical stats, one simulation."""
        server = _serve_fixture(tmp_path)
        specs = [JobSpec(kernel="gzip", scale=SCALE, seed=SEED),
                 JobSpec(kernel="mcf", scale=SCALE, seed=SEED)]

        def drive(client):
            barrier = threading.Barrier(2)
            results = [None, None]

            def one(slot):
                barrier.wait()
                results[slot] = client.run(specs)

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return results

        a, b = _drive(server, drive)
        stats_a = [SimStats.from_dict(s) for _, s in a]
        stats_b = [SimStats.from_dict(s) for _, s in b]
        assert stats_a == stats_b
        # each distinct job simulated exactly once across both clients
        assert server.executor.totals()["sims_run"] == len(specs)
        coalesced = server.metrics.counters["jobs_coalesced"]
        cached = (server.executor.totals()["disk_hits"]
                  + server.executor.totals()["memo_hits"])
        assert coalesced + cached >= len(specs)

    def test_warm_resubmit_hits_memo_not_pool(self, tmp_path):
        server = _serve_fixture(tmp_path)

        def drive(client):
            spec = JobSpec(kernel="gzip", scale=SCALE, seed=SEED)
            client.run([spec])
            [(status, _)] = client.run([spec])
            return status

        status = _drive(server, drive)
        assert status.source in ("memo", "disk")
        assert server.executor.totals()["sims_run"] == 1

    def test_bad_kernel_fails_cleanly(self, tmp_path):
        def drive(client):
            [(status, stats)] = client.run(
                [JobSpec(kernel="nosuchkernel", scale=SCALE)])
            assert stats is None
            return status

        status = _drive(_serve_fixture(tmp_path), drive)
        assert status.state == protocol.FAILED
        assert status.error.kind == "bad-request"

    def test_health_and_metrics_endpoints(self, tmp_path):
        def drive(client):
            client.run([JobSpec(kernel="gzip", scale=SCALE)])
            return client.health(), client.metrics_text()

        health, metrics = _drive(_serve_fixture(tmp_path), drive)
        assert health["status"] == "ok"
        assert health["counters"]["jobs_completed"] == 1
        assert health["sims_run"] == 1
        assert "repro_up 1" in metrics
        assert "repro_sims_total 1" in metrics

    def test_unknown_id_is_not_found(self, tmp_path):
        def drive(client):
            with pytest.raises(ServeError, match="unknown job id"):
                client.status("jnope")
            return True

        assert _drive(_serve_fixture(tmp_path), drive)

    def test_version_mismatch_rejected(self, tmp_path):
        def drive(client):
            status, env = client._request(
                "POST", "/v1/submit",
                {"v": 999, "jobs": [{"kernel": "gzip"}]})
            return status, env

        status, env = _drive(_serve_fixture(tmp_path), drive)
        assert status == 400 and not env["ok"]
        assert "version" in env["error"]["message"]

    def test_graceful_drain_cancels_queued_jobs(self, tmp_path):
        """Shutdown with queued work: queued tickets go cancelled, the
        daemon drains without orphaned state."""
        server = _serve_fixture(tmp_path)

        async def main():
            await server.start()
            # Stall the dispatcher so submissions stay queued.
            await server.dispatcher.stop()
            host, port = server.address
            client = ServeClient(f"{host}:{port}")
            decisions = await asyncio.to_thread(
                client.submit, [JobSpec(kernel="gzip", scale=SCALE)])
            assert decisions[0]["accepted"]
            job_id = decisions[0]["id"]
            server.request_shutdown()
            await server.wait_stopped()
            ticket = server._tickets[job_id]
            return ticket

        ticket = asyncio.run(main())
        assert ticket.state == protocol.CANCELLED
        assert ticket.error.kind == "cancelled"

    def test_backpressure_rejects_when_full(self, tmp_path):
        server = _serve_fixture(tmp_path, queue_depth=1)

        async def main():
            await server.start()
            await server.dispatcher.stop()   # nothing leaves the queue
            host, port = server.address
            client = ServeClient(f"{host}:{port}")

            def drive():
                first = client.submit(
                    [JobSpec(kernel="gzip", scale=SCALE)])
                second = client.submit(
                    [JobSpec(kernel="mcf", scale=SCALE)])
                third = client.submit(
                    [JobSpec(kernel="vpr", scale=SCALE,
                             priority="interactive")])
                return first, second, third

            out = await asyncio.to_thread(drive)
            server.request_shutdown()
            await server.wait_stopped()
            return out

        first, second, third = asyncio.run(main())
        assert first[0]["accepted"]
        assert not second[0]["accepted"]
        assert second[0]["error"]["kind"] == "rejected"
        assert second[0]["error"]["retry_after"] > 0
        # interactive displaces the queued sweep job instead
        assert third[0]["accepted"]
        assert server.metrics.counters["jobs_shed"] == 1
        assert server.metrics.counters["jobs_rejected"] == 1

    def test_cancel_endpoint(self, tmp_path):
        server = _serve_fixture(tmp_path)

        async def main():
            await server.start()
            await server.dispatcher.stop()
            host, port = server.address
            client = ServeClient(f"{host}:{port}")

            def drive():
                [d] = client.submit([JobSpec(kernel="gzip", scale=SCALE)])
                assert client.cancel(d["id"])
                return client.status(d["id"])

            st = await asyncio.to_thread(drive)
            server.request_shutdown()
            await server.wait_stopped()
            return st

        st = asyncio.run(main())
        assert st.state == protocol.CANCELLED


# -- RemoteRunner -----------------------------------------------------------

class TestRemoteRunner:
    def test_remote_runner_matches_local(self, tmp_path):
        cfg = ProcessorConfig()
        expected = run_kernel("mcf", cfg, scale=SCALE, seed=SEED)
        server = _serve_fixture(tmp_path)

        def drive(client):
            runner = RemoteRunner(client.base_url, scale=SCALE, seed=SEED)
            first = runner.run("mcf", cfg)
            again = runner.run("mcf", cfg)     # local memo, no round trip
            return first, again, runner

        first, again, runner = _drive(server, drive)
        assert first == expected and again == expected
        assert runner.memo_hits == 1
        assert runner.server_sources.get("sim") == 1
        assert "served by" in runner.runtime_summary()

    def test_remote_runner_keep_going_collects_failures(self, tmp_path):
        def drive(client):
            runner = RemoteRunner(client.base_url, scale=SCALE, seed=SEED,
                                  keep_going=True)
            out = runner.run_many([("nosuchkernel", ProcessorConfig())])
            return out, runner

        out, runner = _drive(_serve_fixture(tmp_path), drive)
        assert getattr(out[0], "failed", False)
        assert len(runner.failures) == 1

    def test_remote_runner_raises_without_keep_going(self, tmp_path):
        def drive(client):
            runner = RemoteRunner(client.base_url, scale=SCALE, seed=SEED)
            with pytest.raises(ServeError, match="nosuchkernel"):
                runner.run("nosuchkernel", ProcessorConfig())
            return True

        assert _drive(_serve_fixture(tmp_path), drive)

    def test_unreachable_server_is_a_serve_error(self):
        runner = RemoteRunner("127.0.0.1:1", scale=SCALE, seed=SEED)
        with pytest.raises(ServeError, match="cannot reach"):
            runner.run("gzip", ProcessorConfig())


# -- crash safety -----------------------------------------------------------

class TestCrashRecovery:
    """The journal contract, end to end: a crashed incarnation's work
    survives into its successor with nothing lost and nothing re-run."""

    def test_restart_replays_incomplete_and_serves_completed(self, tmp_path):
        from repro.serve.journal import replay_journal

        jpath = str(tmp_path / "journal.jsonl")
        cfg = ProcessorConfig()
        done_spec = JobSpec(kernel="gzip", scale=SCALE, seed=SEED)
        lost_spec = JobSpec(kernel="mcf", scale=SCALE, seed=SEED)
        expected = {
            "gzip": run_kernel("gzip", cfg, scale=SCALE, seed=SEED),
            "mcf": run_kernel("mcf", cfg, scale=SCALE, seed=SEED),
        }

        # Incarnation 1: complete one job, then crash with a second
        # job journaled as accepted but never dispatched.
        server1 = _serve_fixture(tmp_path, journal=jpath)

        async def crash_run():
            await server1.start()
            host, port = server1.address
            client = ServeClient(f"{host}:{port}", timeout=30.0)
            [(status, _)] = await asyncio.to_thread(
                client.run, [done_spec])
            assert status.state == protocol.DONE
            server1.journal.note_accepted(
                lost_spec.cache_key(), lost_spec.to_dict())
            server1.abort()   # kill -9, in spirit

        asyncio.run(crash_run())

        # Incarnation 2: same journal, same cache root.
        server2 = _serve_fixture(tmp_path, journal=jpath)

        def drive(client):
            return client.run([done_spec, lost_spec])

        outcomes = _drive(server2, drive)

        # The incomplete job was re-enqueued from the journal...
        assert server2.metrics.counters["jobs_replayed"] == 1
        assert server2.journal_replay.epochs == 1   # predecessor's mark
        assert list(server2.journal_replay.incomplete) \
            == [lost_spec.cache_key()]
        # ...the completed one came back from the result cache, and
        # nothing was simulated twice.
        for (status, stats), kernel in zip(outcomes, ("gzip", "mcf")):
            assert status.state == protocol.DONE
            assert SimStats.from_dict(stats) == expected[kernel]
        done_status = outcomes[0][0]
        assert done_status.source in ("disk", "memo")
        assert server2.executor.totals()["sims_run"] == 1   # mcf only

        # The journal's whole history audits clean.
        replay = replay_journal(jpath, quarantine=False)
        assert replay.consistent
        assert replay.duplicate_sims() == []
        assert replay.epochs == 2

    def test_corrupt_tail_quarantined_on_startup(self, tmp_path):
        jpath = str(tmp_path / "journal.jsonl")
        with open(jpath, "w", encoding="utf-8") as fh:
            fh.write('{"v": 1, "sha256": "torn-mid-wri\n')

        server = _serve_fixture(tmp_path, journal=jpath)

        def drive(client):
            [(status, _)] = client.run(
                [JobSpec(kernel="gzip", scale=SCALE, seed=SEED)])
            return status

        status = _drive(server, drive)
        assert status.state == protocol.DONE
        assert server.journal_replay.corrupt == 1
        with open(jpath + ".quarantine", encoding="utf-8") as fh:
            assert "# line 1" in fh.read()

    def test_healthz_codes_follow_server_state(self, tmp_path):
        from repro.serve.scheduler import PoolSupervisor

        server = _serve_fixture(tmp_path)

        def drive(client):
            status, env = client._request("GET", "/healthz")
            assert status == 200 and env["status"] == "ok"
            server.supervisor.state = PoolSupervisor.OPEN
            server.supervisor._opened_at = server.supervisor._clock()
            status, env = client._request("GET", "/healthz")
            assert status == 503
            assert env["status"] == "degraded:circuit-open"
            server.supervisor.state = PoolSupervisor.OK
            return True

        assert _drive(server, drive)

    def test_open_breaker_refuses_sweeps_admits_interactive(self, tmp_path):
        from repro.serve.protocol import ErrorInfo
        from repro.serve.scheduler import PoolSupervisor

        server = _serve_fixture(tmp_path)

        def drive(client):
            server.supervisor.state = PoolSupervisor.OPEN
            server.supervisor._opened_at = server.supervisor._clock()
            sweep = JobSpec(kernel="gzip", scale=SCALE, seed=SEED,
                            priority="sweep")
            [decision] = client.submit([sweep])
            assert not decision.get("accepted")
            err = ErrorInfo.from_dict(decision.get("error"))
            assert err.kind == "degraded"
            assert err.retry_after > 0

            # An interactive probe drains, and its healthy outcome
            # closes the breaker (the half-open probe path).
            probe = JobSpec(kernel="gzip", scale=SCALE, seed=SEED,
                            priority="interactive")
            [(status, _)] = client.run([probe])
            assert status.state == protocol.DONE
            assert server.supervisor.state == PoolSupervisor.OK

            [decision] = client.submit([sweep])
            return decision

        decision = _drive(server, drive)
        assert decision.get("accepted")

    def test_chaos_drop_reconnects_and_coalesces(self, tmp_path):
        """A connection cut after the submit is sent must not lose or
        duplicate the job: the retry coalesces onto the accepted one."""
        server = _serve_fixture(tmp_path)
        cfg = ProcessorConfig()
        expected = run_kernel("gzip", cfg, scale=SCALE, seed=SEED)

        def drive(client):
            drops = {"submit": 1, "poll": 1}

            def drop(method, path):
                if method == "POST" and path.endswith("/submit") \
                        and drops["submit"]:
                    drops["submit"] -= 1
                    return True
                if method == "GET" and "/status" in path \
                        and drops["poll"]:
                    drops["poll"] -= 1
                    return True
                return False

            client.chaos_drop = drop
            [(status, stats)] = client.run(
                [JobSpec(kernel="gzip", scale=SCALE, seed=SEED)])
            assert drops == {"submit": 0, "poll": 0}   # both fired
            assert status.state == protocol.DONE
            return stats

        stats = _drive(server, drive)
        assert SimStats.from_dict(stats) == expected
        assert server.executor.totals()["sims_run"] == 1


class TestPoolSupervisor:
    def _sup(self, **kw):
        from repro.serve.scheduler import PoolSupervisor
        clock = {"now": 0.0}
        sup = PoolSupervisor(clock=lambda: clock["now"], **kw)
        return sup, clock

    def test_breaker_lifecycle(self):
        from repro.serve.scheduler import PoolSupervisor
        sup, clock = self._sup(max_restarts=2, cooldown=10.0)
        assert sup.note_transient() is True
        assert sup.state == PoolSupervisor.RESTARTING
        assert sup.note_transient() is True
        assert sup.restarts == 2
        assert sup.note_transient() is False      # third strike trips
        assert sup.state == PoolSupervisor.OPEN
        assert sup.trips == 1
        assert not sup.allows("sweep")
        assert sup.allows("interactive")
        assert 0.5 <= sup.retry_after() <= 10.0
        clock["now"] = 10.5                        # cooldown elapsed
        assert sup.allows("sweep")                 # half-open
        sup.note_ok()
        assert sup.state == PoolSupervisor.OK
        assert sup.consecutive == 0

    def test_backoff_is_capped_exponential(self):
        sup, _ = self._sup(max_restarts=10, backoff_base=0.5,
                           backoff_cap=2.0)
        delays = []
        for _ in range(4):
            sup.note_transient()
            delays.append(sup.backoff())
        assert delays == [0.5, 1.0, 2.0, 2.0]

    def test_batch_transient_classification(self):
        from repro.runtime.parallel import FailedResult
        from repro.serve.scheduler import PoolSupervisor

        class E:
            def __init__(self, key):
                self.key = key

        def failed(phase):
            return FailedResult("gzip", SCALE, SEED, "x", phase=phase)

        entries = [E("a"), E("b")]
        all_timeout = {"a": (failed("timeout"), "failed"),
                       "b": (failed("pool"), "failed")}
        assert PoolSupervisor.batch_transient(entries, all_timeout)
        mixed = {"a": (failed("timeout"), "failed"),
                 "b": (failed("worker"), "failed")}
        assert not PoolSupervisor.batch_transient(entries, mixed)
        assert not PoolSupervisor.batch_transient([], {})
