"""Refactor-equivalence gate: the pipeline must match the monolith.

The golden files under ``tests/golden/`` were generated *before* the
CIEngine monolith was split into registry-assembled components
(``tests/golden/regenerate.py``).  These tests re-run the same points
through the refactored pipeline and require byte-identical output:

* every pre-existing policy (``ci``, ``ci-iw``, ``vect``) across the
  full 12-kernel suite — the serialized ``SimStats.as_dict()`` payloads
  must match the goldens byte for byte, and
* one rendered figure table (Figure 5), which additionally exercises
  the experiment runner and formatting layers.

A mismatch means the refactor changed observable timing behaviour.
Only regenerate the goldens for a *deliberate* timing-model change.
"""

import json
import os

import pytest

SCALE = 0.3
SEED = 1
FIG_SCALE = 0.1
GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


def _golden_bytes(name: str) -> str:
    with open(os.path.join(GOLDEN, name)) as fh:
        return fh.read()


@pytest.mark.parametrize("policy", ["ci", "ci-iw", "vect"])
def test_suite_stats_byte_identical(policy):
    from repro import run_program
    from repro.uarch import ci
    from repro.workloads import build_program, kernel_names

    out = {}
    for name in kernel_names():
        prog = build_program(name, SCALE, SEED)
        st = run_program(prog, ci(1, 512, policy=policy))
        out[name] = st.as_dict()
    produced = json.dumps(out, indent=1, sort_keys=True) + "\n"
    assert produced == _golden_bytes(f"suite_{policy}.json"), (
        f"policy {policy!r} diverged from the pre-refactor golden")


def test_figure_table_byte_identical(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(FIG_SCALE))
    from repro.experiments import fig05
    from repro.experiments.common import Runner
    from repro.runtime import ResultCache

    runner = Runner(scale=FIG_SCALE, seed=SEED, jobs=1,
                    cache=ResultCache(enabled=False))
    produced = fig05.compute(runner).render() + "\n"
    assert produced == _golden_bytes("fig05.txt")
