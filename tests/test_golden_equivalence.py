"""Refactor-equivalence gate: the pipeline must match the monolith.

The golden files under ``tests/golden/`` were generated *before* the
CIEngine monolith was split into registry-assembled components
(``tests/golden/regenerate.py``).  These tests re-run the same points
through the refactored pipeline and require byte-identical output:

* every pre-existing policy (``ci``, ``ci-iw``, ``vect``) across the
  full 12-kernel suite — the serialized ``SimStats.as_dict()`` payloads
  must match the goldens byte for byte, and
* one rendered figure table (Figure 5), which additionally exercises
  the experiment runner and formatting layers.

A mismatch means the refactor changed observable timing behaviour.
Only regenerate the goldens for a *deliberate* timing-model change.
"""

import json
import os

import pytest

from repro.ci.registry import policy_names

SCALE = 0.3
SEED = 1
FIG_SCALE = 0.1
GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


def _golden_bytes(name: str) -> str:
    with open(os.path.join(GOLDEN, name)) as fh:
        return fh.read()


@pytest.mark.parametrize("policy", ["ci", "ci-iw", "vect"])
def test_suite_stats_byte_identical(policy):
    from repro import run_program
    from repro.uarch import ci
    from repro.workloads import build_program, kernel_names

    out = {}
    for name in kernel_names():
        prog = build_program(name, SCALE, SEED)
        st = run_program(prog, ci(1, 512, policy=policy))
        out[name] = st.as_dict()
    produced = json.dumps(out, indent=1, sort_keys=True) + "\n"
    assert produced == _golden_bytes(f"suite_{policy}.json"), (
        f"policy {policy!r} diverged from the pre-refactor golden")


@pytest.mark.parametrize("policy", [None] + policy_names())
@pytest.mark.parametrize("kernel", ["bzip2", "mcf"])
def test_skip_ahead_equivalent_to_force_tick(kernel, policy):
    """Idle-cycle skip-ahead must be timing-invisible (DESIGN.md §9).

    Run the same (kernel, config) with skip-ahead forced on and forced
    off, for every registered policy plus the plain superscalar, with a
    CPI-stack observer attached both times.  The serialized SimStats and
    the per-component cycle accounting must be byte-identical — the only
    permitted difference is the diagnostic ``skipped_cycles`` counter,
    which ``as_dict()`` deliberately excludes.
    """
    from repro import hooks_for
    from repro.observe.cpistack import CPIStack
    from repro.uarch import ci, scal
    from repro.uarch.core import simulate
    from repro.workloads import build_program

    cfg = scal(1, 256) if policy is None else ci(1, 512, policy=policy)
    prog = build_program(kernel, 0.15, SEED)
    runs = {}
    for skip in (True, False):
        obs = CPIStack()
        st = simulate(prog, cfg, hooks=hooks_for(cfg), observer=obs,
                      skip_ahead=skip)
        runs[skip] = (st, obs)
    st_on, cpi_on = runs[True]
    st_off, cpi_off = runs[False]
    assert st_off.skipped_cycles == 0
    on = json.dumps(st_on.as_dict(), indent=1, sort_keys=True)
    off = json.dumps(st_off.as_dict(), indent=1, sort_keys=True)
    assert on == off, f"{kernel}/{policy}: SimStats diverged under skip-ahead"
    assert cpi_on.as_dict() == cpi_off.as_dict(), (
        f"{kernel}/{policy}: CPI stack diverged under skip-ahead")
    assert cpi_on.total == st_on.cycles  # stack still sums exactly


def test_skip_ahead_actually_skips():
    """The guard above is vacuous if nothing ever skips; pin that the
    superscalar config (long memory stalls, no mechanism vetoes) skips a
    nonzero number of idle cycles at this scale."""
    from repro import hooks_for
    from repro.uarch import scal
    from repro.uarch.core import simulate
    from repro.workloads import build_program

    cfg = scal(1, 256)
    total = 0
    for kernel in ("bzip2", "mcf"):
        prog = build_program(kernel, 0.15, SEED)
        st = simulate(prog, cfg, hooks=hooks_for(cfg), skip_ahead=True)
        total += st.skipped_cycles
    assert total > 0, "skip-ahead never fired on the superscalar configs"


def test_figure_table_byte_identical(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(FIG_SCALE))
    from repro.experiments import fig05
    from repro.experiments.common import Runner
    from repro.runtime import ResultCache

    runner = Runner(scale=FIG_SCALE, seed=SEED, jobs=1,
                    cache=ResultCache(enabled=False))
    produced = fig05.compute(runner).render() + "\n"
    assert produced == _golden_bytes("fig05.txt")
