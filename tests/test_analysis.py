"""Tests for the aggregation/reporting helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CIBreakdown,
    aggregate_breakdown,
    ci_breakdown,
    commit_breakdown,
    format_bar,
    format_table,
    harmonic_mean,
    speedup,
)
from repro.uarch import SimStats


class TestHarmonicMean:
    def test_simple(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_empty(self):
        assert harmonic_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                    max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_min_and_arithmetic_mean(self, vals):
        h = harmonic_mean(vals)
        assert min(vals) - 1e-9 <= h <= sum(vals) / len(vals) + 1e-9

    @given(st.floats(min_value=0.1, max_value=10),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_constant_vector(self, v, n):
        assert harmonic_mean([v] * n) == pytest.approx(v)


class TestSpeedup:
    def test_values(self):
        assert speedup(1.178, 1.0) == pytest.approx(0.178)
        assert speedup(0.5, 1.0) == pytest.approx(-0.5)

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestBreakdowns:
    def make_stats(self, **kw):
        st_ = SimStats()
        for k, v in kw.items():
            setattr(st_, k, v)
        return st_

    def test_ci_breakdown_percentages(self):
        b = CIBreakdown(events=100, selected=70, reused=49)
        assert b.not_found_pct == pytest.approx(30.0)
        assert b.selected_no_reuse_pct == pytest.approx(21.0)
        assert b.reused_pct == pytest.approx(49.0)

    def test_ci_breakdown_zero_events(self):
        b = CIBreakdown(0, 0, 0)
        assert b.not_found_pct == b.reused_pct == 0.0

    def test_ci_breakdown_from_stats(self):
        st_ = self.make_stats(ci_events=10, ci_selected=7, ci_reused=4)
        b = ci_breakdown(st_)
        assert (b.events, b.selected, b.reused) == (10, 7, 4)

    def test_aggregate(self):
        a = self.make_stats(ci_events=10, ci_selected=7, ci_reused=4)
        b = self.make_stats(ci_events=20, ci_selected=10, ci_reused=6)
        agg = aggregate_breakdown({"a": a, "b": b})
        assert (agg.events, agg.selected, agg.reused) == (30, 17, 10)

    def test_commit_breakdown(self):
        st_ = self.make_stats(committed=100, committed_reused=14,
                              squashed=40, replicas_executed=60)
        b = commit_breakdown(st_)
        assert b.no_reuse == 86 and b.reuse == 14
        assert b.total == 200
        assert b.reuse_pct_of_committed == pytest.approx(14.0)


class TestFormatting:
    def test_table_alignment(self):
        out = format_table("T", ["a", "long"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out and "30" in out
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1  # all data lines equally wide

    def test_bar(self):
        assert format_bar(0.5, width=10) == "#####....."
        assert format_bar(0.0, width=4) == "...."
        assert format_bar(1.5, width=4) == "####"  # clamped
