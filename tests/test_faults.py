"""Tests for the fault-injection + invariant-checking harness.

The headline property: every injected mechanism fault must ride a real
failure path, so the final architectural state still matches the
functional interpreter and no state-machine invariant ever breaks.
"""

import pytest

from repro import build_program, run_kernel, run_program
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InvariantChecker,
    InvariantViolation,
    diff_against_interpreter,
    plan_for_run,
    run_checked,
)
from repro.observe import Observer
from repro.uarch import ProcessorConfig
from repro.uarch.config import ci
from repro.workloads import kernel_names

SCALE = 0.05
SEED = 1


def prog(name="bzip2"):
    return build_program(name, SCALE, SEED)


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(seed=7, count=10)
        b = FaultPlan.generate(seed=7, count=10)
        assert a == b and len(a) == 10
        assert a != FaultPlan.generate(seed=8, count=10)

    def test_generate_rotates_kinds_and_excludes_crash(self):
        plan = FaultPlan.generate(seed=1, count=10)
        kinds = {s.kind for s in plan.specs}
        assert kinds == set(FAULT_KINDS[:-1])   # no 'crash' by default

    def test_parse_explicit_items(self):
        plan = FaultPlan.parse("squash@400,valfail@350/bzip2")
        assert len(plan) == 2
        # plans sort by cycle
        assert plan.specs[0] == FaultSpec("valfail", 350, "bzip2")
        assert plan.specs[1] == FaultSpec("squash", 400)

    def test_parse_count_spaces_cycles(self):
        plan = FaultPlan.parse("alloc-deny*3@100")
        assert [s.cycle for s in plan.specs] == [100, 101, 102]

    def test_parse_seeded_cycles_deterministic(self):
        a = FaultPlan.parse("valfail*4,seed=9")
        b = FaultPlan.parse("seed=9,valfail*4")   # seed= position-free
        assert a == b

    def test_spec_round_trip(self):
        plan = FaultPlan.parse("squash*2,seed=3,valfail@500/mcf")
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_rejects_unknown_kind_and_bad_counts(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode@100")
        with pytest.raises(ValueError, match="count"):
            FaultPlan.parse("squash*0")
        with pytest.raises(ValueError, match="cycle"):
            FaultPlan.parse("squash@later")

    def test_target_filtering(self):
        plan = FaultPlan.parse("squash@100/mcf,valfail@200")
        assert [s.kind for s in plan.for_program("mcf")] \
            == ["squash", "valfail"]
        assert [s.kind for s in plan.for_program("gzip")] == ["valfail"]


class TestInjection:
    def test_clean_run_has_no_violations(self):
        for policy in ("ci", "vect"):
            rep = run_checked(prog(), ci(1, 512, policy=policy))
            assert rep.ok and not rep.injected
            assert rep.stats.committed > 0

    def test_each_kind_injects_and_passes_oracle(self):
        cfg = ci(1, 512, policy="ci")
        p = prog()
        plan = plan_for_run(p, cfg, count=5, seed=3)
        rep = run_checked(p, cfg, plan=plan)
        assert rep.ok, rep.summary()
        assert {f["kind"] for f in rep.injected} == set(FAULT_KINDS[:-1])
        assert rep.unapplied == 0

    def test_forced_squash_changes_timing_not_architecture(self):
        cfg = ci(1, 512, policy="ci")
        clean = run_checked(prog(), cfg)
        faulted = run_checked(prog(), cfg,
                              plan=FaultPlan.parse("squash@300"))
        assert faulted.ok
        assert [f["kind"] for f in faulted.injected] == ["squash"]
        # Same architectural work retired, perturbed schedule allowed.
        assert faulted.stats.committed == clean.stats.committed

    def test_injections_are_recorded_with_detail(self):
        cfg = ci(1, 512, policy="vect")
        rep = run_checked(prog(), cfg,
                          plan=FaultPlan.parse("valfail@250,alloc-deny@200"))
        assert rep.ok
        kinds = {f["kind"]: f for f in rep.injected}
        assert "validation failure" in kinds["valfail"]["detail"]
        assert "alloc" in kinds["alloc-deny"]["detail"]

    def test_crash_fault_reports_as_planned_crash(self):
        rep = run_checked(prog(), ci(1, 512, policy="ci"),
                          plan=FaultPlan.parse("crash@100"))
        assert rep.crashed and rep.stats is None
        assert rep.ok   # a planned crash is an expected outcome

    def test_crash_raises_without_the_harness(self):
        cfg = ci(1, 512, policy="ci")
        with pytest.raises(InjectedCrash):
            run_program(prog(), cfg, faults="crash@100")

    def test_unapplied_faults_are_reported(self):
        rep = run_checked(prog(), ci(1, 512, policy="ci"),
                          plan=FaultPlan.parse("squash@999999"))
        assert rep.injected == [] and rep.unapplied == 1

    def test_injector_delegates_to_inner_hooks(self):
        # A faulted mechanism run still produces mechanism activity.
        cfg = ci(1, 512, policy="vect")
        rep = run_checked(prog(), cfg,
                          plan=FaultPlan.parse("alloc-deny@300"))
        assert rep.stats.replicas_created > 0

    def test_baseline_config_supports_injection(self):
        # No mechanism hooks at all: only squash/crash faults can land.
        rep = run_checked(prog(), ProcessorConfig(),
                          plan=FaultPlan.parse("squash@200"))
        assert rep.ok and len(rep.injected) == 1


class _Corrupter(Observer):
    """Deliberately breaks core bookkeeping to prove the checker sees it."""

    name = "corrupter"

    def __init__(self, cycle):
        self.cycle = cycle
        self.done = False

    def on_cycle_end(self, core):
        if not self.done and core.cycle >= self.cycle:
            core.freelist.free -= 1    # phantom in-use register
            self.done = True


class TestInvariantChecker:
    def test_detects_seeded_corruption(self):
        from repro.observe import MultiObserver
        from repro import hooks_for
        from repro.uarch import Core
        cfg = ci(1, 512, policy="ci")
        checker = InvariantChecker(strict=False)
        # corrupter runs before the checker within the same cycle
        obs = MultiObserver([_Corrupter(cycle=100), checker])
        core = Core(cfg, prog(), hooks_for(cfg), observer=obs)
        core.run()
        assert any("free-list leak" in v for v in checker.violations)

    def test_strict_mode_raises(self):
        from repro.observe import MultiObserver
        from repro import hooks_for
        from repro.uarch import Core
        cfg = ci(1, 512, policy="ci")
        obs = MultiObserver([_Corrupter(cycle=100),
                             InvariantChecker(strict=True)])
        core = Core(cfg, prog(), hooks_for(cfg), observer=obs)
        with pytest.raises(InvariantViolation, match="free-list leak"):
            core.run()

    def test_render_reports_ok(self):
        checker = InvariantChecker(strict=False)
        run_kernel("bzip2", ci(1, 512), scale=SCALE, seed=SEED,
                   observer=checker)
        assert "OK" in checker.render()
        assert checker.checked_cycles > 0


class TestOracle:
    def test_oracle_catches_corrupted_register(self):
        from repro import hooks_for
        from repro.uarch import Core
        cfg = ci(1, 512, policy="ci")
        core = Core(cfg, prog(), hooks_for(cfg))
        core.run()
        assert diff_against_interpreter(core) == []
        core.sregs[3] += 1
        diffs = diff_against_interpreter(core)
        assert diffs and any("r3" in d for d in diffs)

    def test_oracle_catches_corrupted_memory(self):
        from repro import hooks_for
        from repro.uarch import Core
        cfg = ci(1, 512, policy="vect")
        core = Core(cfg, prog(), hooks_for(cfg))
        core.run()
        core.mem[12345678] = 42
        assert diff_against_interpreter(core)

    def test_oracle_skips_unfinished_runs(self):
        from repro import hooks_for
        from repro.uarch import Core
        cfg = ci(1, 512, policy="ci")
        core = Core(cfg, prog(), hooks_for(cfg))
        core.run(max_instructions=50)
        assert not core.halted
        assert diff_against_interpreter(core) == []


class TestRunProgramWiring:
    def test_check_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        st = run_kernel("bzip2", ci(1, 512), scale=SCALE, seed=SEED)
        assert st.committed > 0

    def test_faults_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@100")
        with pytest.raises(InjectedCrash):
            run_kernel("bzip2", ci(1, 512), scale=SCALE, seed=SEED)

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@100")
        # An explicit empty plan overrides the env crash.
        st = run_program(prog(), ci(1, 512), faults=FaultPlan([]),
                         check=True)
        assert st.committed > 0

    def test_faults_and_check_compose(self):
        st = run_program(prog(), ci(1, 512),
                         faults="squash@300,valfail@350", check=True)
        assert st.committed > 0

    def test_audit_trail_records_injections(self):
        from repro.observe import AuditTrail
        trail = AuditTrail()
        run_program(prog(), ci(1, 512), faults="valfail@250,squash@300",
                    observer=trail)
        assert len(trail.faults) == 2
        assert "injected faults" in trail.render()
        # ... and the payload round-trips through worker transport.
        merged = AuditTrail.merge_data([trail.export_data()])
        assert len(merged["faults"]) == 2


class TestAcceptanceSweep:
    """ISSUE acceptance: >= 100 seeded faults across the 12-kernel suite
    under both 'ci' and 'vect' pass the oracle with zero violations."""

    def test_sweep(self):
        total_injected = 0
        for policy in ("ci", "vect"):
            cfg = ci(1, 512, policy=policy)
            for i, kernel in enumerate(kernel_names()):
                p = build_program(kernel, SCALE, SEED)
                plan = plan_for_run(p, cfg, count=5, seed=i)
                rep = run_checked(p, cfg, plan=plan)
                assert rep.ok, rep.summary()
                assert not rep.violations
                total_injected += len(rep.injected)
        assert total_injected >= 100
