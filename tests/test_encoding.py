"""Round-trip tests for the binary instruction/program encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble, run
from repro.isa.encoding import (
    EncodingError,
    INSTRUCTION_SIZE,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.workloads import SUITE
from repro.workloads.micro import MICRO_PATTERNS, micro_program


def roundtrip(instr):
    return decode_instruction(encode_instruction(instr), pc=instr.pc)


class TestInstructionRoundtrip:
    def test_alu(self):
        i = assemble("add r1, r2, r3").code[0]
        assert roundtrip(i) == i

    def test_negative_immediate(self):
        i = assemble("addi r1, r2, -12345").code[0]
        j = roundtrip(i)
        assert j.imm == -12345 and j == i

    def test_memory_forms(self):
        for src in ("ld r1, 16(r2)", "st r3, 8(r4)"):
            i = assemble(src).code[0]
            assert roundtrip(i) == i

    def test_branches(self):
        p = assemble("x: beq r1, r2, x\nbnez r3, x\nj x")
        for i in p.code:
            assert roundtrip(i) == i

    def test_no_operand_forms(self):
        for src in ("nop", "halt"):
            i = assemble(src).code[0]
            assert roundtrip(i) == i

    def test_record_size(self):
        i = assemble("nop").code[0]
        assert len(encode_instruction(i)) == INSTRUCTION_SIZE

    def test_bad_length_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(b"\x00" * 7)

    def test_bad_opcode_rejected(self):
        blob = bytearray(encode_instruction(assemble("nop").code[0]))
        blob[0] = 0xEE
        with pytest.raises(EncodingError):
            decode_instruction(bytes(blob))

    @given(st.integers(min_value=-(1 << 62), max_value=(1 << 62)))
    @settings(max_examples=30, deadline=None)
    def test_immediate_domain(self, imm):
        i = assemble("li r5, 0").code[0]
        i = type(i)(op=i.op, rd=5, imm=imm, pc=0)
        assert roundtrip(i).imm == imm


class TestProgramRoundtrip:
    @pytest.mark.parametrize("name", [s.name for s in SUITE])
    def test_suite_kernels_bit_exact(self, name):
        spec = next(s for s in SUITE if s.name == name)
        prog = spec.program(0.3, 1)
        again = decode_program(encode_program(prog))
        assert again.code == prog.code
        assert again.data_init == prog.data_init
        assert again.name == prog.name

    @pytest.mark.parametrize("name", sorted(MICRO_PATTERNS))
    def test_micro_patterns_execute_identically(self, name):
        prog = micro_program(name)
        again = decode_program(encode_program(prog))
        a, b = run(prog), run(again)
        assert a.regs == b.regs and a.steps == b.steps

    def test_bad_magic(self):
        with pytest.raises(EncodingError):
            decode_program(b"XXXX" + b"\x00" * 32)

    def test_bad_version(self):
        blob = bytearray(encode_program(assemble("halt", name="v")))
        blob[4] = 99
        with pytest.raises(EncodingError):
            decode_program(bytes(blob))

    def test_empty_program(self):
        prog = assemble("", name="empty")
        again = decode_program(encode_program(prog))
        assert again.code == [] and again.name == "empty"
