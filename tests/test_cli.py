"""Tests for the command-line interface."""

from repro.cli import build_parser, main, make_config
from repro.uarch.config import INF_REGS


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestMakeConfig:
    def parse(self, *argv):
        return build_parser().parse_args(list(argv))

    def test_scal(self):
        cfg = make_config(self.parse("run", "bzip2", "--scheme", "scal",
                                     "--regs", "256", "--ports", "2"))
        assert cfg.ci_policy is None and not cfg.wide_bus
        assert cfg.phys_regs == 256 and cfg.l1d_ports == 2

    def test_ci_with_specmem(self):
        cfg = make_config(self.parse("run", "bzip2", "--scheme", "ci",
                                     "--spec-mem", "768"))
        assert cfg.ci_policy == "ci" and cfg.spec_mem_size == 768

    def test_inf_regs(self):
        cfg = make_config(self.parse("run", "bzip2", "--regs", "inf"))
        assert cfg.phys_regs == INF_REGS

    def test_vect_policy(self):
        cfg = make_config(self.parse("run", "bzip2", "--scheme", "vect",
                                     "--replicas", "8"))
        assert cfg.ci_policy == "vect" and cfg.replicas == 8


class TestCommands:
    def test_run_kernel(self, capsys):
        rc, out = run_cli(capsys, "run", "gzip", "--scale", "0.3")
        assert rc == 0
        assert "IPC" in out and "reused instructions" in out

    def test_run_baseline_hides_mechanism_stats(self, capsys):
        rc, out = run_cli(capsys, "run", "gzip", "--scheme", "wb",
                          "--scale", "0.3")
        assert rc == 0 and "replicas created" not in out

    def test_run_assembly_file(self, tmp_path, capsys):
        f = tmp_path / "prog.s"
        f.write_text("li r1, 41\naddi r1, r1, 1\nhalt\n")
        rc, out = run_cli(capsys, "run", str(f), "--scheme", "scal")
        assert rc == 0 and "committed / cycles : 3" in out

    def test_trace(self, capsys):
        rc, out = run_cli(capsys, "trace", "eon", "--scale", "0.3")
        assert rc == 0
        assert "branch anatomy" in out and "load strides" in out

    def test_list(self, capsys):
        rc, out = run_cli(capsys, "list")
        assert rc == 0
        for token in ("bzip2", "vpr", "fig09", "headroom", "ci-iw"):
            assert token in out

    def test_unknown_figure(self, capsys):
        rc = main(["figure", "fig99"])
        assert rc == 2

    def test_unknown_ablation(self, capsys):
        rc = main(["ablation", "nosuch"])
        assert rc == 2

    def test_unknown_kernel_exits_2_with_hint(self, capsys):
        rc = main(["run", "nosuchkernel"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown kernel" in err
        assert "repro kernels" in err

    def test_unknown_kernel_suggests_close_match(self, capsys):
        rc = main(["run", "bzip"])
        err = capsys.readouterr().err
        assert rc == 2 and "did you mean" in err and "bzip2" in err

    def test_kernels_lists_registry(self, capsys):
        from repro.workloads import all_workloads
        rc, out = run_cli(capsys, "kernels")
        assert rc == 0
        for spec in all_workloads():
            assert spec.name in out and spec.category in out
        assert "0.1/0.3/0.5" in out

    def test_kernels_verbose(self, capsys):
        rc, out = run_cli(capsys, "kernels", "-v")
        assert rc == 0
        assert "traits:" in out and "pointer chase" in out

    def test_figure_by_number(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.2")
        rc, out = run_cli(capsys, "figure", "5", "--scale", "0.2")
        assert rc == 0 and "Figure 5" in out


class TestRuntimeCommands:
    def test_cache_info(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc, out = run_cli(capsys, "cache", "info")
        assert rc == 0
        assert "cache root" in out and "entries    : 0" in out

    def test_cache_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc, out = run_cli(capsys, "cache", "clear")
        assert rc == 0 and "removed 0" in out

    def test_cache_verify_strict_gates_on_quarantine(self, capsys, tmp_path,
                                                     monkeypatch):
        import os
        root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        os.makedirs(root / "quarantine")
        (root / "quarantine" / "0badcafe.json").write_text("junk")
        rc, out = run_cli(capsys, "cache", "verify")
        assert rc == 0 and "quarantined: 1" in out
        rc, _ = run_cli(capsys, "cache", "verify", "--strict")
        assert rc == 1

    def test_suite_populates_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc, out = run_cli(capsys, "suite", "--scheme", "wb",
                          "--scale", "0.1", "--jobs", "1")
        assert rc == 0 and "INT(hmean)" in out
        rc, out = run_cli(capsys, "cache", "info")
        assert "entries    : 12" in out

    def test_suite_jobs_flag_parses(self):
        args = build_parser().parse_args(["suite", "--jobs", "3"])
        assert args.jobs == 3
        args = build_parser().parse_args(["figure", "fig09", "--jobs", "2"])
        assert args.jobs == 2
        args = build_parser().parse_args(["ablation", "mbs"])
        assert args.jobs is None

    def test_profile_command(self, capsys):
        rc, out = run_cli(capsys, "profile", "eon", "--scale", "0.1",
                          "--limit", "5")
        assert rc == 0
        assert "committed" in out and "cumtime" in out


class TestObserveCommands:
    def test_run_with_observe(self, capsys):
        rc, out = run_cli(capsys, "run", "gzip", "--scale", "0.1",
                          "--observe", "cpi")
        assert rc == 0 and "CPI stack" in out

    def test_run_observe_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVE", "cpi")
        rc, out = run_cli(capsys, "run", "gzip", "--scale", "0.1")
        assert rc == 0 and "CPI stack" in out

    def test_run_observe_off_by_default(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_OBSERVE", raising=False)
        rc, out = run_cli(capsys, "run", "gzip", "--scale", "0.1")
        assert rc == 0 and "CPI stack" not in out

    def test_why(self, capsys):
        rc, out = run_cli(capsys, "why", "bzip2", "--scale", "0.1")
        assert rc == 0
        assert "CPI stack" in out and "dominant reason" in out

    def test_pipeview_text(self, capsys):
        rc, out = run_cli(capsys, "pipeview", "gzip", "--scale", "0.05",
                          "--limit", "16")
        assert rc == 0
        assert "F fetch" in out and out.count("|") >= 32

    def test_pipeview_konata_file(self, capsys, tmp_path):
        from repro.observe import parse_konata
        out_file = tmp_path / "trace.kanata"
        rc, _ = run_cli(capsys, "pipeview", "gzip", "--scale", "0.05",
                        "--format", "konata", "--out", str(out_file))
        assert rc == 0
        parsed = parse_konata(out_file.read_text())
        assert parsed and all("F" in p["stages"] for p in parsed.values())

    def test_pipeview_jsonl_stdout(self, capsys):
        import json
        rc, out = run_cli(capsys, "pipeview", "gzip", "--scale", "0.05",
                          "--format", "jsonl", "--limit", "8")
        assert rc == 0
        lines = out.strip().splitlines()
        assert len(lines) == 8
        assert json.loads(lines[0])["seq"] == 0


class TestServeCli:
    def test_cache_info_shows_counters(self, capsys, tmp_path,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc, out = run_cli(capsys, "cache", "info")
        assert rc == 0
        assert "hits       : 0" in out
        assert "misses     : 0" in out
        assert "coalesced  : 0" in out

    def test_serve_and_submit_parsers(self):
        args = build_parser().parse_args(["serve", "--port", "0",
                                          "--queue-depth", "4"])
        assert args.port == 0 and args.queue_depth == 4
        args = build_parser().parse_args(
            ["submit", "gzip", "mcf", "--server", "h:1",
             "--priority", "sweep"])
        assert args.kernels == ["gzip", "mcf"]
        assert args.server == "h:1" and args.priority == "sweep"
        args = build_parser().parse_args(["suite", "--server", "h:1"])
        assert args.server == "h:1"

    def test_submit_unknown_kernel_exits_2(self, capsys):
        rc, _ = run_cli(capsys, "submit", "nosuchkernel",
                        "--server", "127.0.0.1:1")
        assert rc == 2

    def test_submit_unreachable_server_exits_2(self, capsys):
        rc, _ = run_cli(capsys, "submit", "gzip",
                        "--server", "127.0.0.1:1")
        assert rc == 2

    def test_suite_unreachable_server_exits_2(self, capsys):
        rc, _ = run_cli(capsys, "suite", "--server", "127.0.0.1:1",
                        "--scale", "0.1")
        assert rc == 2
