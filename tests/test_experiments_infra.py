"""Tests for the experiment harness infrastructure (tiny workload scale)."""

import pytest

from repro.experiments import ALL_ABLATIONS, ALL_EXPERIMENTS
from repro.experiments.common import (
    Check,
    Figure,
    Runner,
    monotone_nondecreasing,
    reg_label,
)
from repro.uarch import ci, wb
from repro.uarch.config import INF_REGS


class TestCheckAndFigure:
    def test_check_render(self):
        assert Check("x", True).render().startswith("[PASS]")
        assert Check("x", False, "why").render() == "[DEVIATION] x — why"

    def test_figure_render_contains_everything(self):
        fig = Figure("F1", "title", ["a", "b"], [[1, 2.5]],
                     notes=["a note"], checks=[Check("claim", True)])
        out = fig.render()
        for token in ("F1: title", "2.500", "[PASS] claim", "note: a note"):
            assert token in out

    def test_all_passed(self):
        assert Figure("f", "t", [], [], checks=[Check("a", True)]).all_passed
        assert not Figure("f", "t", [], [],
                          checks=[Check("a", True),
                                  Check("b", False)]).all_passed

    def test_reg_label(self):
        assert reg_label(128) == "128"
        assert reg_label(INF_REGS) == "inf"

    def test_monotone_helper(self):
        assert monotone_nondecreasing([1, 1, 2, 3])
        assert not monotone_nondecreasing([1, 3, 2])


class TestRunner:
    def test_memoisation(self):
        r = Runner(scale=0.15)
        cfg = wb(1, 256)
        a = r.run("eon", cfg)
        b = r.run("eon", cfg)
        assert a is b  # identical object: cached

    def test_different_configs_not_shared(self):
        r = Runner(scale=0.15)
        assert r.run("eon", wb(1, 256)) is not r.run("eon", wb(2, 256))

    def test_suite_and_hmean(self):
        r = Runner(scale=0.15)
        stats = r.run_suite(wb(1, 256))
        assert len(stats) == 12
        h = r.suite_hmean_ipc(wb(1, 256))
        assert 0 < h < 8

    def test_program_cache(self):
        r = Runner(scale=0.15)
        assert r.program("bzip2") is r.program("bzip2")


class TestRegistries:
    def test_experiment_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig04", "fig05", "fig08", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "intext"}

    def test_ablation_registry_complete(self):
        assert set(ALL_ABLATIONS) == {
            "refinements", "mbs", "select_window", "headroom",
            "bpred", "frontend", "policies"}


class TestOneFigureEndToEnd:
    """fig05 is the cheapest figure (one configuration): run it tiny."""

    def test_fig05_structure(self):
        from repro.experiments import fig05
        fig = fig05.compute(Runner(scale=0.15))
        assert fig.fig_id == "Figure 5"
        assert len(fig.rows) == 13          # 12 kernels + INT row
        assert all(len(r) == len(fig.headers) for r in fig.rows)
        # Percentages must sum to ~100 per kernel with events.
        for row in fig.rows:
            if row[1]:
                assert row[2] + row[3] + row[4] == pytest.approx(100.0)

    def test_fig05_renders(self):
        from repro.experiments import fig05
        out = fig05.compute(Runner(scale=0.15)).render()
        assert "Figure 5" in out and "INT" in out
