"""Tests for the service-layer chaos harness (plan grammar + report).

The subprocess drills themselves run in CI's chaos-smoke job and via
``repro chaos``; here we pin down the deterministic plumbing — the
plan grammar, seeded trigger resolution, and the report verdict — so a
drill's behaviour is reproducible from its spec string alone.
"""

import pytest

from repro.faults.chaos import (
    CHAOS_KINDS,
    DEFAULT_PLAN,
    ChaosPlan,
    ChaosReport,
    ChaosSpec,
)


class TestPlanGrammar:
    def test_parse_kinds_positions_and_seed(self):
        plan = ChaosPlan.parse("kill-server@mid, drop-conn, seed=7")
        assert plan.seed == 7
        assert [s.kind for s in plan.specs] == ["kill-server", "drop-conn"]
        assert plan.specs[0].pos == "mid"
        assert plan.specs[1].pos == ""

    def test_spec_roundtrip(self):
        text = "kill-server@mid,drop-conn,corrupt-journal@2,seed=7"
        assert ChaosPlan.parse(text).to_spec() == text

    def test_long_form_aliases(self):
        plan = ChaosPlan.parse("drop-connection,corrupt-journal-tail")
        assert [s.kind for s in plan.specs] \
            == ["drop-conn", "corrupt-journal"]

    def test_default_plan_covers_every_kind(self):
        plan = ChaosPlan.parse(DEFAULT_PLAN)
        assert sorted(s.kind for s in plan.specs) == sorted(CHAOS_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosPlan.parse("set-on-fire")

    def test_bad_position_rejected(self):
        with pytest.raises(ValueError, match="position"):
            ChaosPlan.parse("kill-server@sometimes")

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ChaosPlan.parse("kill-server,seed=lucky")

    def test_generate_rotates_kinds_deterministically(self):
        a = ChaosPlan.generate(seed=3, count=8)
        b = ChaosPlan.generate(seed=3, count=8)
        assert a == b
        assert [s.kind for s in a.specs] \
            == [CHAOS_KINDS[i % len(CHAOS_KINDS)] for i in range(8)]


class TestTriggerResolution:
    def test_pinned_positions(self):
        total = 10
        import random
        rng = random.Random(0)
        assert ChaosSpec("kill-server", "start").trigger(total, rng) == 0
        assert ChaosSpec("kill-server", "mid").trigger(total, rng) == 5
        assert ChaosSpec("kill-server", "end").trigger(total, rng) == 9
        assert ChaosSpec("kill-server", "3").trigger(total, rng) == 3
        # a numeric position past the sweep clamps to the last job
        assert ChaosSpec("kill-server", "99").trigger(total, rng) == 9

    def test_unpinned_triggers_are_seeded(self):
        plan = ChaosPlan.parse("kill-server,drop-conn,slow-client,seed=5")
        first = plan.resolve(12)
        second = plan.resolve(12)
        assert first == second                      # deterministic
        assert all(0 <= t < 12 for t, _ in first)   # in range
        assert first == sorted(first,
                               key=lambda p: (p[0], p[1].kind))
        # a different seed moves at least one trigger
        other = ChaosPlan.parse("kill-server,drop-conn,slow-client,seed=6")
        assert [t for t, _ in other.resolve(12)] != [t for t, _ in first] \
            or other.resolve(12) != first

    def test_resolve_single_job_sweep(self):
        plan = ChaosPlan.parse(DEFAULT_PLAN)
        for trigger, _ in plan.resolve(1):
            assert trigger == 0


class TestReport:
    def _report(self, **kw):
        base = dict(plan_spec="kill-server", seed=1, kernels=["gzip"])
        base.update(kw)
        return ChaosReport(**base)

    def test_clean_report_is_ok(self):
        report = self._report(records=6, epochs=2, server_kills=1,
                              fired=["kill-server@0"])
        assert report.ok
        text = report.render()
        assert "verdict         : OK" in text
        assert "journal replay  : consistent" in text
        assert "identical to the serial reference" in text

    @pytest.mark.parametrize("flaw", [
        {"violations": ["k: started without an accepted record"]},
        {"duplicate_sims": ["deadbeef"]},
        {"failures": ["gzip: failed"]},
        {"mismatches": ["gzip"]},
    ])
    def test_any_flaw_fails_the_verdict(self, flaw):
        report = self._report(**flaw)
        assert not report.ok
        assert "verdict         : FAIL" in report.render()

    def test_render_surfaces_the_evidence(self):
        report = self._report(
            violations=["k: completed without an accepted record"],
            duplicate_sims=["deadbeefcafe0000"],
            quarantined=3)
        text = report.render()
        assert "INCONSISTENT" in text
        assert "deadbeefcafe" in text
        assert "quarantined     : 3 line(s)" in text
