"""Tests for the re-convergent-point heuristics (Figure 2's three shapes)."""

import pytest

from repro.ci import estimate_reconvergent_point
from repro.isa import assemble
from repro.trace import check_reconvergence, collect_trace
from repro.workloads import build_program


def branch_at(prog, label_or_pc):
    pc = prog.labels.get(label_or_pc, label_or_pc) if isinstance(label_or_pc, str) else label_or_pc
    return prog.code[pc]


class TestHeuristics:
    def test_loop_structure(self):
        # Figure 2a: backward branch -> next sequential instruction.
        p = assemble("""
        loop:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        br = p.code[1]
        assert br.is_backward_branch
        assert estimate_reconvergent_point(p, br) == 2

    def test_if_then_structure(self):
        # Figure 2b: no jump above the target -> re-converge at the target.
        p = assemble("""
            beqz r1, skip
            addi r2, r2, 1
            addi r3, r3, 1
        skip:
            halt
        """)
        assert estimate_reconvergent_point(p, p.code[0]) == p.labels["skip"]

    def test_if_then_else_structure(self):
        # Figure 2c: unconditional forward branch above the else target ->
        # re-converge at that branch's destination.
        p = assemble("""
            beqz r1, else_
            addi r2, r2, 1
            j join
        else_:
            addi r3, r3, 1
        join:
            halt
        """)
        assert estimate_reconvergent_point(p, p.code[0]) == p.labels["join"]

    def test_backward_jump_above_target_is_not_hammock(self):
        # A *backward* jump above the target must not be treated as the
        # if-then-else closing jump.
        p = assemble("""
        top:
            nop
            j top
        tgt:
            beqz r1, tgt
            halt
        """)
        br = p.code[2]
        assert estimate_reconvergent_point(p, br) == br.pc + 1

    def test_non_branch_rejected(self):
        p = assemble("nop")
        with pytest.raises(ValueError):
            estimate_reconvergent_point(p, p.code[0])

    def test_paper_figure1_example(self):
        """The exact hammock of the paper's Figure 1."""
        p = assemble("""
        loop:
            ld   r0, 0(r1)
            beqz r0, else_
            addi r2, r2, 1
            j    ip
        else_:
            addi r3, r3, 1
        ip: add  r4, r4, r0
            addi r1, r1, 8
            blt  r1, r5, loop
            halt
        """)
        hammock = p.code[1]
        assert estimate_reconvergent_point(p, hammock) == p.labels["ip"]
        loop_branch = p.code[p.labels["ip"] + 2]
        assert estimate_reconvergent_point(p, loop_branch) == loop_branch.pc + 1


class TestDynamicValidation:
    """The heuristic's estimates must actually be reached at run time."""

    @pytest.mark.parametrize("name", ["bzip2", "gcc", "parser", "twolf",
                                      "vpr", "mcf"])
    def test_hammock_estimates_reached_dynamically(self, name):
        """Forward (hammock) branches — the ones the mechanism targets —
        must reach their estimated re-convergent point essentially always.
        Loop-closing backward branches re-converge only at loop exit by
        construction, which costs performance, not correctness."""
        prog = build_program(name, 0.4)
        checks = check_reconvergence(prog, collect_trace(prog))
        forward = [c for c in checks.values()
                   if prog.code[c.branch_pc].is_forward_branch]
        assert forward
        total = sum(c.occurrences for c in forward)
        hits = sum(c.reconverged for c in forward)
        assert hits / total > 0.95

    def test_backward_branch_reconverges_at_loop_exit(self):
        prog = build_program("twolf", 0.4)
        checks = check_reconvergence(prog, collect_trace(prog))
        backward = [c for c in checks.values()
                    if prog.code[c.branch_pc].is_backward_branch]
        assert backward
        # Reached at most once per loop lifetime, so the rate is tiny.
        assert all(c.hit_rate < 0.5 for c in backward)
