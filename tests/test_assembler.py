"""Tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, DATA_BASE, Op, WORD, assemble


class TestBasicEncoding:
    def test_empty_program(self):
        p = assemble("")
        assert len(p) == 0

    def test_comments_and_blanks_skipped(self):
        p = assemble("""
        ; full-line comment
        # hash comment
        nop   ; trailing comment
        """)
        assert len(p) == 1
        assert p.code[0].op is Op.NOP

    def test_alu_reg_reg(self):
        p = assemble("add r1, r2, r3")
        i = p.code[0]
        assert (i.op, i.rd, i.rs1, i.rs2) == (Op.ADD, 1, 2, 3)
        assert i.srcs == (2, 3)

    def test_alu_reg_imm_mnemonic(self):
        p = assemble("addi r1, r2, -5")
        i = p.code[0]
        assert (i.op, i.rd, i.rs1, i.imm) == (Op.ADDI, 1, 2, -5)
        assert i.srcs == (2,)

    def test_reg_reg_mnemonic_with_immediate_lowers(self):
        p = assemble("add r1, r2, 5\nsub r1, r2, 3\nand r1, r2, 0xff")
        assert p.code[0].op is Op.ADDI and p.code[0].imm == 5
        assert p.code[1].op is Op.ADDI and p.code[1].imm == -3
        assert p.code[2].op is Op.ANDI and p.code[2].imm == 0xFF

    def test_subi_pseudo(self):
        p = assemble("subi r1, r1, 4")
        assert p.code[0].op is Op.ADDI and p.code[0].imm == -4

    def test_li_and_mov(self):
        p = assemble("li r5, 0x10\nmov r6, r5")
        assert p.code[0].op is Op.LI and p.code[0].imm == 16
        assert p.code[1].op is Op.MOV and p.code[1].rs1 == 5

    def test_pc_assignment(self):
        p = assemble("nop\nnop\nnop")
        assert [i.pc for i in p.code] == [0, 1, 2]


class TestMemoryOps:
    def test_load_displacement(self):
        p = assemble("ld r1, 16(r2)")
        i = p.code[0]
        assert (i.op, i.rd, i.rs1, i.imm) == (Op.LD, 1, 2, 16)

    def test_store_operand_order(self):
        # st value, disp(base): rs2 holds the value, rs1 the base.
        p = assemble("st r7, 8(r3)")
        i = p.code[0]
        assert (i.op, i.rs1, i.rs2, i.imm) == (Op.ST, 3, 7, 8)
        assert i.rd is None

    def test_data_label_displacement(self):
        p = assemble(".data buf 4\nld r1, buf(r2)")
        assert p.code[0].imm == DATA_BASE

    def test_data_allocation_is_sequential(self):
        p = assemble(".data a 2\n.data b 3\nnop")
        assert p.data_labels["a"] == DATA_BASE
        assert p.data_labels["b"] == DATA_BASE + 2 * WORD
        assert p.data_end == DATA_BASE + 5 * WORD

    def test_dataw_initialises_memory(self):
        p = assemble(".dataw v 10 0 30\nnop")
        base = p.data_labels["v"]
        mem = p.initial_memory()
        assert mem.get(base) == 10
        assert base + WORD not in mem  # zeros are implicit
        assert mem.get(base + 2 * WORD) == 30

    def test_la_pseudo(self):
        p = assemble(".data arr 1\nla r1, arr")
        assert p.code[0].op is Op.LI
        assert p.code[0].imm == DATA_BASE

    def test_label_plus_offset_immediate(self):
        p = assemble(".data arr 4\nld r1, arr+8(r2)")
        assert p.code[0].imm == DATA_BASE + 8


class TestControlFlow:
    def test_forward_and_backward_branches(self):
        p = assemble("""
        top: addi r1, r1, 1
             beq r1, r2, done
             j top
        done: halt
        """)
        beq = p.code[1]
        assert beq.op is Op.BEQ and beq.target == 3
        assert beq.is_forward_branch and not beq.is_backward_branch
        j = p.code[2]
        assert j.op is Op.J and j.target == 0

    def test_backward_branch_property(self):
        p = assemble("loop: nop\nbnez r1, loop")
        assert p.code[1].is_backward_branch

    def test_zero_compare_branch(self):
        p = assemble("beqz r3, out\nout: halt")
        i = p.code[0]
        assert i.op is Op.BEQZ and i.rs1 == 3 and i.target == 1
        assert i.srcs == (3,)

    def test_label_on_own_line(self):
        p = assemble("start:\n  nop\n  j start")
        assert p.labels["start"] == 0
        assert p.code[1].target == 0

    def test_multiple_labels_same_pc(self):
        p = assemble("a: b: nop")
        assert p.labels["a"] == p.labels["b"] == 0

    def test_instruction_above(self):
        p = assemble("nop\nadd r1, r1, r1\nhalt")
        assert p.instruction_above(1).op is Op.NOP
        assert p.instruction_above(0) is None


class TestErrors:
    @pytest.mark.parametrize("src", [
        "bogus r1, r2, r3",
        "add r1, r2",
        "ld r1, r2",
        "beq r1, r2, nowhere",
        "li r99, 0",
        ".data",
        ".dataw x",
        "div r1, r2, 5",          # no immediate form
        "addi r1, r2, r3",        # immediate op with register operand
    ])
    def test_malformed_raises(self, src):
        with pytest.raises(AssemblerError):
            assemble(src)

    def test_duplicate_code_label(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_duplicate_data_label(self):
        with pytest.raises(AssemblerError):
            assemble(".data x 1\n.data x 1")


class TestListing:
    def test_listing_contains_labels_and_pcs(self):
        p = assemble("start: addi r1, r1, 1\nj start")
        out = p.listing()
        assert "start:" in out and "addi" in out
