"""Regenerate the golden refactor-equivalence outputs.

The golden files pin the observable behaviour of the three pre-existing
policies (``ci``, ``ci-iw``, ``vect``) across the full 12-kernel suite,
plus one rendered figure table.  They were generated *before* the
mechanism-pipeline refactor and must stay byte-identical afterwards
(``tests/test_golden_equivalence.py``).

Only regenerate when the *timing model itself* changes deliberately::

    PYTHONPATH=src python tests/golden/regenerate.py

Keep SCALE/SEED in sync with tests/test_golden_equivalence.py.
"""

from __future__ import annotations

import json
import os

SCALE = 0.3
SEED = 1
POLICIES = ("ci", "ci-iw", "vect")
FIG_SCALE = 0.1

HERE = os.path.dirname(os.path.abspath(__file__))


def suite_stats(policy: str) -> dict:
    from repro import run_program
    from repro.uarch import ci
    from repro.workloads import build_program, kernel_names
    out = {}
    for name in kernel_names():
        prog = build_program(name, SCALE, SEED)
        st = run_program(prog, ci(1, 512, policy=policy))
        out[name] = st.as_dict()
    return out


def figure_table() -> str:
    os.environ["REPRO_SCALE"] = str(FIG_SCALE)
    from repro.experiments import fig05
    from repro.experiments.common import Runner
    from repro.runtime import ResultCache
    runner = Runner(scale=FIG_SCALE, seed=SEED, jobs=1,
                    cache=ResultCache(enabled=False))
    return fig05.compute(runner).render()


def run_keys() -> dict:
    """Pin the canonical run keys (tests/test_run_spec.py).

    Regenerate only when the key schema changes deliberately — a drift
    here silently invalidates every user's disk cache.
    """
    from repro.runtime import CACHE_SCHEMA, RunSpec
    from repro.uarch import ci, scal, wb
    specs = [
        RunSpec("gzip", 0.1, 1, ci(1, 512)),
        RunSpec("mcf", 0.1, 1, wb(1, 512)),
        RunSpec("eon", 0.1, 2, ci(1, 512, policy="vect"), policy="vect"),
        RunSpec("perlbmk", 0.05, 3, scal(1, 256)),
        RunSpec("bzip2", 0.1, 1, ci(1, 512), faults="valfail*2,seed=7"),
    ]
    return {"schema": CACHE_SCHEMA,
            "entries": [{"spec": s.to_dict(), "key": s.cache_key()}
                        for s in specs]}


def main() -> None:
    for policy in POLICIES:
        path = os.path.join(HERE, f"suite_{policy}.json")
        with open(path, "w") as fh:
            json.dump(suite_stats(policy), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")
    path = os.path.join(HERE, "fig05.txt")
    with open(path, "w") as fh:
        fh.write(figure_table() + "\n")
    print(f"wrote {path}")
    path = os.path.join(HERE, "run_keys.json")
    with open(path, "w") as fh:
        json.dump(run_keys(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
