"""Tests for the trace front end (events, tracer, analyses)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.trace import collect_trace, profile_trace
from repro.trace.analysis import BranchStats, LoadStats


class TestCollectTrace:
    def test_events_sequential_and_complete(self):
        p = assemble("nop\naddi r1, r1, 1\nhalt")
        tr = collect_trace(p)
        assert [e.seq for e in tr] == [0, 1, 2]
        assert [e.pc for e in tr] == [0, 1, 2]
        assert tr[1].result == 1

    def test_branch_taken_flags(self):
        p = assemble("""
            li r1, 2
        loop:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        tr = collect_trace(p)
        branches = [e for e in tr if e.is_cond_branch]
        assert [e.taken for e in branches] == [True, False]

    def test_next_pc_links(self):
        p = assemble("j skip\nnop\nskip: halt")
        tr = collect_trace(p)
        assert tr[0].next_pc == 2
        assert len(tr) == 2  # the nop is skipped

    def test_load_store_addresses(self):
        p = assemble(".data b 2\nla r1, b\nst r1, 0(r1)\nld r2, 0(r1)\nhalt")
        tr = collect_trace(p)
        st_ev = next(e for e in tr if e.is_store)
        ld_ev = next(e for e in tr if e.is_load)
        assert st_ev.eff_addr == ld_ev.eff_addr


class TestBranchStats:
    def test_bias_and_hardness(self):
        b = BranchStats(pc=0)
        for taken in [True] * 20:
            b.record(taken)
        assert b.bias == 1.0 and not b.is_hard
        b2 = BranchStats(pc=1)
        for i in range(20):
            b2.record(i % 2 == 0)
        assert b2.is_hard and b2.transitions == 19

    def test_few_executions_not_hard(self):
        b = BranchStats(pc=0)
        for taken in (True, False, True):
            b.record(taken)
        assert not b.is_hard  # too few samples

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_counts_consistent(self, outcomes):
        b = BranchStats(pc=0)
        for t in outcomes:
            b.record(t)
        assert b.execs == len(outcomes)
        assert b.taken == sum(outcomes)
        assert 0.5 <= b.bias <= 1.0


class TestLoadStats:
    def test_constant_stride_detected(self):
        l = LoadStats(pc=0)
        for i in range(10):
            l.record(1000 + 16 * i)
        assert l.is_strided and l.dominant_stride == 16
        assert l.stride_rate == 1.0

    def test_random_addresses_not_strided(self):
        l = LoadStats(pc=0)
        for a in (3, 1000, 17, 523, 88, 4021, 9, 777):
            l.record(a)
        assert not l.is_strided

    def test_too_few_samples(self):
        l = LoadStats(pc=0)
        l.record(0)
        l.record(8)
        assert l.stride_rate == 0.0 and not l.is_strided


class TestProfileTrace:
    def test_profile_counts(self):
        p = assemble("""
        .dataw v 1 2 3 4
            la r8, v
            li r1, 4
        loop:
            ld r0, 0(r8)
            addi r8, r8, 8
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        prof = profile_trace(collect_trace(p))
        assert prof.dynamic_branch_count == 4
        load = next(iter(prof.loads.values()))
        assert load.execs == 4 and load.dominant_stride == 8

    def test_empty_trace(self):
        prof = profile_trace([])
        assert prof.instructions == 0
        assert prof.hard_branch_fraction == 0.0
