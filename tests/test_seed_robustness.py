"""The headline result must not depend on the workload data seed."""

import pytest

from repro import run_kernel
from repro.analysis import harmonic_mean
from repro.uarch import ci, wb
from repro.workloads import kernel_names


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_ci_beats_wb_for_any_seed(seed):
    names = kernel_names()
    base = harmonic_mean(
        run_kernel(n, wb(1, 512), scale=0.3, seed=seed).ipc for n in names)
    mech = harmonic_mean(
        run_kernel(n, ci(1, 512), scale=0.3, seed=seed).ipc for n in names)
    gain = mech / base - 1
    assert 0.10 < gain < 0.40, f"seed {seed}: gain {gain:+.1%}"


def test_reuse_stable_across_seeds():
    fractions = []
    for seed in (1, 2, 3):
        st = run_kernel("bzip2", ci(1, 512), scale=0.3, seed=seed)
        fractions.append(st.reuse_fraction)
    assert all(0.05 < f < 0.35 for f in fractions)
    assert max(fractions) - min(fractions) < 0.15
