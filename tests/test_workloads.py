"""Functional correctness and characterisation of the 12 kernels.

Every kernel must (a) halt, (b) match its pure-Python reference model
register-for-register, and (c) exhibit the branch/stride traits the
experiment design relies on (DESIGN.md §2).
"""

import pytest

from repro.isa import run
from repro.trace import collect_trace, profile_trace
from repro.workloads import SUITE, build_program, get_kernel, kernel_names

SCALE = 0.5  # keep functional tests quick; traits hold at any scale >= 0.5


@pytest.fixture(scope="module")
def results():
    out = {}
    for spec in SUITE:
        prog = spec.program(SCALE, seed=1)
        out[spec.name] = (spec, run(prog))
    return out


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for spec in SUITE:
        prog = spec.program(SCALE, seed=1)
        out[spec.name] = profile_trace(collect_trace(prog))
    return out


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("name", kernel_names())
    def test_halts(self, results, name):
        _, r = results[name]
        assert r.halted

    @pytest.mark.parametrize("name", kernel_names())
    def test_matches_reference(self, results, name):
        spec, r = results[name]
        expected = spec.reference(SCALE, 1)
        for reg, value in expected.items():
            assert r.reg(reg) == value, (
                f"{name}: r{reg} = {r.reg(reg)}, expected {value}")

    @pytest.mark.parametrize("name", kernel_names())
    def test_seed_changes_data(self, name):
        spec = get_kernel(name)
        assert spec.build_source(SCALE, 1) != spec.build_source(SCALE, 2)

    @pytest.mark.parametrize("name", kernel_names())
    def test_deterministic(self, name):
        spec = get_kernel(name)
        assert spec.build_source(SCALE, 7) == spec.build_source(SCALE, 7)

    @pytest.mark.parametrize("name", kernel_names())
    def test_reference_matches_at_other_seed(self, name):
        spec = get_kernel(name)
        r = run(spec.program(SCALE, seed=3))
        for reg, value in spec.reference(SCALE, 3).items():
            assert r.reg(reg) == value


class TestSuiteShape:
    def test_twelve_kernels_in_spec_order(self):
        assert kernel_names() == [
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
            "mcf", "parser", "perlbmk", "twolf", "vortex", "vpr",
        ]

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("nosuch")

    @pytest.mark.parametrize("name", kernel_names())
    def test_dynamic_size_in_budget(self, results, name):
        _, r = results[name]
        # Trace-scale programs: big enough to warm predictors, small enough
        # for the cycle simulator (DESIGN.md §2).
        assert 3_000 <= r.steps <= 60_000

    def test_build_program_helper(self):
        prog = build_program("bzip2", SCALE)
        assert len(prog) > 10 and prog.name == "bzip2"


class TestCharacterisation:
    """The traits each kernel was designed to have (drives every figure)."""

    @pytest.mark.parametrize("name", [n for n in kernel_names() if n != "eon"])
    def test_most_kernels_have_hard_branches(self, profiles, name):
        assert profiles[name].hard_branches, f"{name} should have hard branches"

    def test_eon_branches_are_easy(self, profiles):
        prof = profiles["eon"]
        # The pixel-threshold branch is ~97% biased; loop branches are easy.
        assert prof.hard_branch_fraction < 0.10

    @pytest.mark.parametrize("name", ["bzip2", "crafty", "gap", "gcc",
                                      "parser", "perlbmk", "twolf", "vpr"])
    def test_strided_kernels_have_strided_loads(self, profiles, name):
        assert profiles[name].strided_loads, f"{name} should have strided loads"

    def test_mcf_chase_loads_are_not_strided(self, profiles):
        # mcf's pointer-chase and cost loads are non-strided by design;
        # only the small audit stream is strided.
        prof = profiles["mcf"]
        assert len(prof.strided_loads) <= 1
        assert len(prof.loads) >= 3

    def test_gap_has_both_load_kinds(self, profiles):
        prof = profiles["gap"]
        strided = {l.pc for l in prof.strided_loads}
        assert strided and len(prof.loads) > len(strided)

    def test_bzip2_strides_match_layout(self, profiles):
        # src/out walk word-by-word (stride 8); the unrolled weight stream
        # advances a full L1 line per iteration (stride 32).
        strides = {l.dominant_stride for l in profiles["bzip2"].strided_loads}
        assert strides <= {8, 32} and 8 in strides and 32 in strides

    def test_vortex_has_stride_16(self, profiles):
        strides = {l.dominant_stride for l in profiles["vortex"].strided_loads}
        assert 16 in strides

    @pytest.mark.parametrize("name", ["bzip2", "gcc", "twolf", "vpr", "perlbmk"])
    def test_hard_branch_fraction_significant(self, profiles, name):
        assert profiles[name].hard_branch_fraction > 0.20, name
