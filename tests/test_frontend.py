"""Unit tests for the fetch unit."""

from repro.isa import assemble
from repro.uarch import ProcessorConfig
from repro.uarch.bpred import Gshare, StaticBTFN
from repro.uarch.frontend import FetchUnit


def make(src, cfg=None, bpred=None):
    cfg = cfg or ProcessorConfig()
    return FetchUnit(cfg, assemble(src), bpred or Gshare(cfg.gshare_bits))


class TestFetchWidth:
    def test_fetches_up_to_width(self):
        f = make("\n".join(["nop"] * 20))
        assert f.fetch_cycle(1) == 8
        assert len(f.queue) == 8

    def test_stops_at_taken_branch(self):
        # An unconditional jump counts as the cycle's one taken transfer.
        f = make("nop\nj tgt\nnop\nnop\ntgt: nop\nnop")
        n = f.fetch_cycle(1)
        assert n == 2                        # nop + j
        assert f.queue[-1][1].instr.is_jump
        assert f.pc == 4                     # redirected to the target

    def test_taken_prediction_redirects(self):
        # "Up to 1 taken branch" per cycle: fetch stops after the taken
        # backward branch; the next cycle resumes at its target.
        f = make("loop: nop\nbnez r1, loop\nnop", bpred=StaticBTFN())
        assert f.fetch_cycle(1) == 2
        assert [d.pc for _, d in f.queue] == [0, 1]
        assert f.pc == 0
        f.fetch_cycle(2)
        assert [d.pc for _, d in f.queue][2] == 0

    def test_not_taken_prediction_falls_through(self):
        f = make("beqz r1, skip\nnop\nskip: halt", bpred=StaticBTFN())
        f.fetch_cycle(1)
        assert [d.pc for _, d in f.queue] == [0, 1, 2]

    def test_stops_at_halt(self):
        f = make("nop\nhalt\nnop\nnop")
        assert f.fetch_cycle(1) == 2
        assert f.stalled

    def test_stops_past_code_end(self):
        f = make("nop\nnop")
        assert f.fetch_cycle(1) == 2
        assert f.stalled and f.fetch_cycle(2) == 0


class TestQueueAndRedirect:
    def test_frontend_depth_gates_pop(self):
        cfg = ProcessorConfig(frontend_depth=3)
        f = make("nop\nnop", cfg)
        f.fetch_cycle(1)
        assert f.pop_ready(2) is None        # still in decode
        assert f.pop_ready(4) is not None    # 1 + depth

    def test_queue_capacity(self):
        cfg = ProcessorConfig(fetch_queue_size=10)
        f = make("\n".join(["nop"] * 40), cfg)
        f.fetch_cycle(1)
        f.fetch_cycle(2)
        assert len(f.queue) == 10            # capped

    def test_redirect_flushes_and_delays(self):
        f = make("\n".join(["nop"] * 20))
        f.fetch_cycle(1)
        f.redirect(15, cycle=1)
        assert len(f.queue) == 0
        assert f.fetch_cycle(1) == 0         # takes effect next cycle
        assert f.fetch_cycle(2) > 0
        assert f.queue[0][1].pc == 15

    def test_sequence_numbers_monotonic_across_redirects(self):
        f = make("\n".join(["nop"] * 30))
        f.fetch_cycle(1)
        last = f.queue[-1][1].seq
        f.redirect(0, cycle=1)
        f.fetch_cycle(2)
        assert f.queue[0][1].seq > last

    def test_empty_flag(self):
        f = make("nop")
        assert not f.empty
        f.fetch_cycle(1)
        while f.pop_ready(10) is not None:
            pass
        assert f.empty
